package core

import (
	"container/heap"
	"math"
	"slices"
	"sync"

	"xsp/internal/interval"
	"xsp/internal/trace"
	"xsp/internal/vclock"
)

// StreamOptions configures a StreamCorrelator.
type StreamOptions struct {
	// ReorderWindow bounds how far behind the stream's watermark (the
	// maximum Begin fed so far) a span may arrive and still be placed in
	// sweep order: spans wait in a reorder buffer until the watermark has
	// advanced ReorderWindow past their begin. Size it to the maximum
	// cross-shard arrival skew — for publish-order feeds, the longest span
	// whose children are published before it (a layer's duration). Spans
	// arriving later than that are stragglers: they are held aside and
	// finalized by Flush exactly as a batch CorrelateWith would, at the
	// cost of re-running correlation once. Zero (the default) buffers
	// nothing: every span resolves the moment it arrives, and any
	// out-of-order arrival is a straggler.
	ReorderWindow vclock.Duration

	// Isolated makes Feed clone every span before using it, so the
	// correlator's parent links never write into spans a concurrent reader
	// (or the publishing tracer) still holds. The server tap runs isolated;
	// in-process pipelines that want the links written through — the
	// Memory.Trace sharing semantics — leave it false.
	Isolated bool
}

// StreamCorrelator is the online counterpart of Correlate: it consumes
// spans in arrival order — via Feed, or as a trace.Collector tap through
// Publish — and resolves parents as the stream advances instead of
// re-running a batch correlation per snapshot.
//
//   - Launch and synchronous spans resolve the moment they arrive, against
//     incrementally maintained per-level active-ancestor stacks (the same
//     levelStacks the batch sweep uses).
//   - Execution spans wait in a pending table keyed by correlation id and
//     resolve the moment their launch does; device-only records (no launch
//     ever arrives) fall back to containment at Flush, like the batch
//     second pass.
//   - Pipelined overlap degrades only the window it occurs in: the
//     overlapping stretch of the stream is deferred and resolved through
//     per-level interval trees built over just that window's spans (plus
//     the ancestors active at its open), while the rest of the stream
//     stays on the stack fast path.
//   - Arrival reordering within StreamOptions.ReorderWindow is absorbed by
//     a watermark-keyed reorder buffer; later stragglers are finalized by
//     Flush, which re-runs batch CorrelateWith over the accumulated trace
//     so the end state is exactly the batch result.
//
// After Flush, parent assignments are identical to CorrelateWith on the
// same spans in canonical order. Before Flush they are provisional: spans
// still buffered, deferred in an open window, or pending a launch are not
// yet linked, and once a straggler has arrived (Stats().Stragglers > 0)
// already-released spans may even hold a link the straggler's presence
// would change — only the Flush redo settles them. All methods are safe
// for concurrent use; Feed and Flush serialize on one mutex, so tap the
// correlator from the ingestion fan-in point, not from every publisher.
type StreamCorrelator struct {
	mu   sync.Mutex
	opts StreamOptions

	all   []*trace.Span        // every span fed, in arrival order
	owned map[*trace.Span]bool // fed unparented: the correlator owns their ParentID

	buf          eventHeap // reorder buffer, min-heap in sweep order
	maxBegin     vclock.Time
	lastReleased *trace.Span // last span handed to the resolver, in sweep order
	released     int

	stacks  levelStacks
	levels  []trace.Level // sorted distinct levels seen
	corr    *corrTable    // correlation id -> resolved launch parent
	pending map[uint64][]pendingExec

	degraded    bool
	windowEnd   vclock.Time
	winCands    []*trace.Span // possible containers for the deferred spans
	winDeferred []*trace.Span // spans awaiting the window's interval trees
	windows     int

	stragglers     []*trace.Span // arrived behind the release point; Flush finalizes
	stragglersSeen int
}

// pendingExec is an execution span waiting for its launch to resolve. The
// containment fallback (the batch second pass) is computed at arrival,
// while the ancestor stacks still hold the exec's position, and applied if
// the launch never resolves to a parent.
type pendingExec struct {
	span        *trace.Span
	containment uint64
}

// NewStreamCorrelator returns an empty streaming correlator.
func NewStreamCorrelator(opts StreamOptions) *StreamCorrelator {
	return &StreamCorrelator{
		opts:    opts,
		owned:   make(map[*trace.Span]bool),
		corr:    newSparseCorrTable(),
		pending: make(map[uint64][]pendingExec),
	}
}

// Publish implements trace.Collector, so the correlator can tap a span
// stream directly (e.g. behind trace.Server.SetTap).
func (sc *StreamCorrelator) Publish(spans ...*trace.Span) { sc.Feed(spans...) }

// Feed consumes the next spans in arrival order, resolving every parent
// the stream's progress allows.
func (sc *StreamCorrelator) Feed(spans ...*trace.Span) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for _, s := range spans {
		if s == nil {
			continue
		}
		if sc.opts.Isolated {
			s = s.Clone()
		}
		sc.all = append(sc.all, s)
		if s.ParentID == 0 {
			sc.owned[s] = true
		}
		if sc.lastReleased != nil && compareEvents(s, sc.lastReleased) <= 0 {
			// Arrived behind the release point: out-of-window straggler.
			sc.stragglers = append(sc.stragglers, s)
			sc.stragglersSeen++
			continue
		}
		heap.Push(&sc.buf, s)
		if s.Begin > sc.maxBegin {
			sc.maxBegin = s.Begin
		}
	}
	sc.drain(sc.maxBegin - vclock.Time(sc.opts.ReorderWindow))
}

// drain releases buffered spans whose begin the watermark has passed, in
// sweep order, into the resolver.
func (sc *StreamCorrelator) drain(watermark vclock.Time) {
	for len(sc.buf) > 0 && sc.buf[0].Begin <= watermark {
		s := heap.Pop(&sc.buf).(*trace.Span)
		sc.resolve(s)
		sc.lastReleased = s
		sc.released++
	}
}

// Flush finalizes everything the stream could not: it releases the
// reorder buffer, closes an open degraded window, applies the containment
// fallback to execution spans whose launch never resolved, and — if any
// straggler arrived behind the release point — re-runs batch correlation
// over the accumulated spans, so the final parent assignment is exactly
// what CorrelateWith would produce. The stream remains usable: later Feed
// calls continue from the flushed state.
func (sc *StreamCorrelator) Flush() {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.drain(vclock.Time(math.MaxInt64))
	if sc.degraded {
		sc.closeWindow()
	}
	for corr, waiting := range sc.pending {
		for _, p := range waiting {
			if p.span.ParentID == 0 && p.containment != 0 {
				p.span.ParentID = p.containment
			}
		}
		delete(sc.pending, corr)
	}
	if len(sc.stragglers) > 0 {
		sc.redoBatch()
	}
}

// Reset discards every accumulated span and all resolver state, returning
// the correlator to empty — the streaming counterpart of
// trace.Memory.Reset, for when the collector the correlator taps is reset
// between independent evaluation runs. The progress counters (stragglers,
// degraded windows) restart from zero too. Like Memory.Reset, it is not
// atomic with respect to in-flight feeds: quiesce publishers first.
func (sc *StreamCorrelator) Reset() {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.all = nil
	sc.owned = make(map[*trace.Span]bool)
	sc.buf = nil
	sc.maxBegin = 0
	sc.lastReleased = nil
	sc.released = 0
	sc.stacks = levelStacks{}
	sc.levels = nil
	sc.corr = newSparseCorrTable()
	sc.pending = make(map[uint64][]pendingExec)
	sc.degraded = false
	sc.windowEnd = 0
	sc.winCands, sc.winDeferred = nil, nil
	sc.windows = 0
	sc.stragglers = nil
	sc.stragglersSeen = 0
}

// resolve advances the online sweep by one span, in sweep order.
func (sc *StreamCorrelator) resolve(s *trace.Span) {
	if sc.degraded && s.Begin >= sc.windowEnd {
		sc.closeWindow()
	}
	sc.noteLevel(s.Level)

	st := sc.stacks.slot(s.Level)
	popDead(st, s.Begin)
	if stack := *st; len(stack) > 0 && sc.deeperLevelSeen(s.Level) && stackConflict(stack[len(stack)-1], s) {
		// Pipelined overlap at a parent-capable level: degrade this window
		// to the interval-tree fallback, like the batch auto strategy —
		// but only until the overlap clears, not for the whole stream.
		if !sc.degraded {
			sc.openWindow(stack[len(stack)-1])
		}
		if s.End > sc.windowEnd {
			sc.windowEnd = s.End
		}
	}

	if sc.degraded {
		sc.winCands = append(sc.winCands, s)
		if s.ParentID == 0 {
			sc.winDeferred = append(sc.winDeferred, s)
		}
	} else if s.ParentID == 0 {
		if s.Kind != trace.KindExec {
			if p := sc.stacks.parent(sc.levels, s); p != nil {
				s.ParentID = p.ID
			}
			if s.Kind == trace.KindLaunch && s.CorrelationID != 0 {
				sc.corr.set(s.CorrelationID, s.ParentID)
				sc.launchResolved(s.CorrelationID, s.ParentID)
			}
		} else {
			sc.resolveExec(s, func() uint64 {
				if p := sc.stacks.parent(sc.levels, s); p != nil {
					return p.ID
				}
				return 0
			})
		}
	}

	*st = append(*st, s)
}

// resolveExec links an execution span through its launch's correlation id
// when the launch has already resolved to a parent; otherwise the span
// waits in the pending table with its containment fallback (computed now,
// while the stacks hold this position) for the launch — or Flush.
func (sc *StreamCorrelator) resolveExec(s *trace.Span, containment func() uint64) {
	if s.CorrelationID != 0 {
		if pid := sc.corr.get(s.CorrelationID); pid != 0 {
			s.ParentID = pid
			return
		}
	}
	c := containment()
	if s.CorrelationID == 0 {
		// No launch can ever resolve it: containment is final, exactly the
		// batch second pass.
		if c != 0 {
			s.ParentID = c
		}
		return
	}
	sc.pending[s.CorrelationID] = append(sc.pending[s.CorrelationID], pendingExec{span: s, containment: c})
}

// launchResolved resolves the execution spans waiting on a launch the
// moment the launch's own parent is known: they inherit it, or take their
// stored containment fallback when the launch found none — matching the
// batch second pass.
func (sc *StreamCorrelator) launchResolved(corr, parent uint64) {
	waiting := sc.pending[corr]
	if len(waiting) == 0 {
		return
	}
	delete(sc.pending, corr)
	for _, p := range waiting {
		pid := parent
		if pid == 0 {
			pid = p.containment
		}
		if pid != 0 && p.span.ParentID == 0 {
			p.span.ParentID = pid
		}
	}
}

// openWindow starts a degraded window at the current sweep position. The
// candidate set is seeded with every span still active on any stack: a
// container of a span inside the window either is active now or arrives
// during the window.
func (sc *StreamCorrelator) openWindow(top *trace.Span) {
	sc.degraded = true
	sc.windows++
	sc.windowEnd = top.End
	for _, l := range sc.levels {
		sc.winCands = append(sc.winCands, *sc.stacks.slot(l)...)
	}
}

// closeWindow resolves the window's deferred spans through per-level
// interval trees built over the window candidates — the correlateTree
// logic, scoped to just this stretch of the stream.
func (sc *StreamCorrelator) closeWindow() {
	deferred, cands := sc.winDeferred, sc.winCands
	sc.degraded = false
	sc.windowEnd = 0
	sc.winCands = nil
	sc.winDeferred = nil
	if len(deferred) == 0 {
		return
	}

	// Candidates were collected in sweep order, so each level's insertion
	// order is begin-ascending — the same order the batch tree path gets
	// from the trace's per-level index.
	trees := make(map[trace.Level]*interval.Tree)
	for _, c := range cands {
		t := trees[c.Level]
		if t == nil {
			t = interval.New()
			trees[c.Level] = t
		}
		t.Insert(interval.Interval{Start: c.Begin, End: c.End, Value: c})
	}
	parentAt := func(s *trace.Span) uint64 {
		if p := treeParentAt(sc.levels, func(l trace.Level) *interval.Tree { return trees[l] }, s); p != nil {
			return p.ID
		}
		return 0
	}

	for _, s := range deferred {
		if s.ParentID != 0 {
			continue // resolved meanwhile (a launch landed for it)
		}
		if s.Kind != trace.KindExec {
			s.ParentID = parentAt(s)
			if s.Kind == trace.KindLaunch && s.CorrelationID != 0 {
				sc.corr.set(s.CorrelationID, s.ParentID)
				sc.launchResolved(s.CorrelationID, s.ParentID)
			}
			continue
		}
		sc.resolveExec(s, func() uint64 { return parentAt(s) })
	}
}

// redoBatch is the straggler path: spans arrived so far out of order that
// the online sweep's answers may be stale, so every parent the correlator
// owns is reset and batch CorrelateWith re-runs over the full accumulated
// trace in canonical order — the exact batch result, by construction. The
// resolver state is then rebuilt so the stream can continue.
func (sc *StreamCorrelator) redoBatch() {
	sc.stragglers = sc.stragglers[:0]
	for s := range sc.owned {
		s.ParentID = 0
	}
	tr := &trace.Trace{Spans: make([]*trace.Span, len(sc.all))}
	copy(tr.Spans, sc.all)
	tr.SortByBegin()
	CorrelateWith(tr, StrategyAuto)

	// Rebuild the online state from the settled timeline: replay the
	// stacks (no queries — everything is resolved), refill the launch
	// table, and move the release point to the stream's end so any further
	// out-of-order arrival is again a straggler.
	sc.stacks = levelStacks{}
	sc.corr = newSparseCorrTable()
	sc.pending = make(map[uint64][]pendingExec)
	events := sortedEvents(tr)
	for _, s := range events {
		sc.noteLevel(s.Level)
		sc.stacks.push(s)
		if s.Kind == trace.KindLaunch && s.CorrelationID != 0 && sc.owned[s] {
			sc.corr.set(s.CorrelationID, s.ParentID)
		}
	}
	if len(events) > 0 {
		sc.lastReleased = events[len(events)-1]
	}
	sc.released = len(events)
}

// noteLevel records a stack level the stream has seen.
func (sc *StreamCorrelator) noteLevel(l trace.Level) {
	i, found := slices.BinarySearch(sc.levels, l)
	if !found {
		sc.levels = slices.Insert(sc.levels, i, l)
	}
}

// deeperLevelSeen reports whether any level below l has appeared — only
// then can spans at l be queried as parents, making overlap at l matter
// (the batch eligibility check likewise skips the deepest level).
func (sc *StreamCorrelator) deeperLevelSeen(l trace.Level) bool {
	return len(sc.levels) > 0 && sc.levels[len(sc.levels)-1] > l
}

// Trace returns the accumulated spans as a canonically ordered trace. The
// spans are shared with the correlator (and, unless the correlator is
// Isolated, with whoever fed them): parents resolved later are visible
// through the returned trace, exactly like trace.Memory.Trace.
func (sc *StreamCorrelator) Trace() *trace.Trace {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	tr := &trace.Trace{Spans: make([]*trace.Span, len(sc.all))}
	copy(tr.Spans, sc.all)
	tr.SortByBegin()
	return tr
}

// SnapshotTrace is Trace with every span deep-copied: a point-in-time
// snapshot safe to read and mutate while the stream keeps feeding.
func (sc *StreamCorrelator) SnapshotTrace() *trace.Trace {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	tr := &trace.Trace{Spans: make([]*trace.Span, len(sc.all))}
	for i, s := range sc.all {
		tr.Spans[i] = s.Clone()
	}
	tr.SortByBegin()
	return tr
}

// StreamStats describes a correlator's progress, for observability and
// tests.
type StreamStats struct {
	Fed             int // spans consumed by Feed
	Released        int // spans the resolver has processed in sweep order
	Buffered        int // spans waiting in the reorder buffer
	PendingExecs    int // execution spans waiting for their launch
	Stragglers      int // spans that arrived behind the release point, ever
	DegradedWindows int // windows degraded to the interval-tree fallback
}

// Stats returns a snapshot of the stream's progress counters.
func (sc *StreamCorrelator) Stats() StreamStats {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	pending := 0
	for _, w := range sc.pending {
		pending += len(w)
	}
	return StreamStats{
		Fed:             len(sc.all),
		Released:        sc.released,
		Buffered:        len(sc.buf),
		PendingExecs:    pending,
		Stragglers:      sc.stragglersSeen,
		DegradedWindows: sc.windows,
	}
}

// eventHeap is a min-heap of spans in sweep order (compareEvents), backing
// the reorder buffer.
type eventHeap []*trace.Span

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return compareEvents(h[i], h[j]) < 0 }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*trace.Span)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}
