package core

import (
	"container/heap"
	"math"
	"slices"
	"sort"
	"sync"

	"xsp/internal/interval"
	"xsp/internal/trace"
	"xsp/internal/vclock"
)

// StreamOptions configures a StreamCorrelator.
type StreamOptions struct {
	// ReorderWindow bounds how far behind the stream's watermark (the
	// maximum Begin fed so far) a span may arrive and still be placed in
	// sweep order: spans wait in a reorder buffer until the watermark has
	// advanced ReorderWindow past their begin. Size it to the maximum
	// cross-shard arrival skew — for publish-order feeds, the longest span
	// whose children are published before it (a layer's duration). Spans
	// arriving later than that are stragglers: they are held aside and
	// finalized by Flush through a bounded repair region — only spans
	// overlapping the stragglers' window are re-correlated, not the whole
	// accumulated trace. Zero (the default) buffers nothing: every span
	// resolves the moment it arrives, and any out-of-order arrival is a
	// straggler.
	ReorderWindow vclock.Duration

	// Isolated makes Feed clone every span before using it, so the
	// correlator's parent links never write into spans a concurrent reader
	// (or the publishing tracer) still holds. The server tap runs isolated;
	// in-process pipelines that want the links written through — the
	// Memory.Trace sharing semantics — leave it false.
	Isolated bool

	// Retain bounds the live, repairable state of a long-running stream.
	// When nonzero, Feed periodically folds finalized spans — those the
	// sweep has passed by more than ReorderWindow+Retain of virtual time,
	// with no open degraded window, pending execution span, or unrepaired
	// straggler reaching back to them — into an immutable checkpoint
	// segment that Trace and SnapshotTrace merge with the live tail, so
	// the resolver's live state covers a bounded stretch of recent history
	// instead of every span ever fed. Stragglers whose repair window
	// reaches behind the checkpoint horizon reopen it (exact, counted in
	// Stats.Reopens); size Retain to the deepest straggler you
	// expect to repair cheaply. Zero (the default) keeps every span live;
	// Checkpoint folds on demand either way.
	Retain vclock.Duration
}

// autoFoldEvery is how many releases Feed lets pass between automatic
// checkpoint folds when StreamOptions.Retain is set — folding is O(live),
// so it is amortized rather than attempted per span.
const autoFoldEvery = 1024

// StreamCorrelator is the online counterpart of Correlate: it consumes
// spans in arrival order — via Feed, or as a trace.Collector tap through
// Publish — and resolves parents as the stream advances instead of
// re-running a batch correlation per snapshot.
//
//   - Launch and synchronous spans resolve the moment they arrive, against
//     incrementally maintained per-level active-ancestor stacks (the same
//     levelStacks the batch sweep uses).
//   - Execution spans wait in a pending table keyed by correlation id and
//     resolve the moment their launch does; device-only records (no launch
//     ever arrives) fall back to containment at Flush, like the batch
//     second pass.
//   - Pipelined overlap degrades only the window it occurs in: the
//     overlapping stretch of the stream is deferred and resolved through
//     per-level interval trees built over just that window's spans (plus
//     the ancestors active at its open), while the rest of the stream
//     stays on the stack fast path.
//   - Arrival reordering within StreamOptions.ReorderWindow is absorbed by
//     a watermark-keyed reorder buffer; later stragglers are finalized by
//     Flush through a repair region — only the spans overlapping the
//     stragglers' window re-correlate, against per-level interval trees
//     over exactly those spans — so the end state is the batch result at a
//     cost bounded by the stragglers' overlap, not the stream's length.
//   - With StreamOptions.Retain set, finalized history folds into
//     immutable checkpoint segments (see Checkpoint), keeping the live
//     resolver state bounded on long-running servers.
//
// After Flush, parent assignments are identical to CorrelateWith on the
// same spans in canonical order. Before Flush they are provisional: spans
// still buffered, deferred in an open window, or pending a launch are not
// yet linked, and once a straggler has arrived (Stats().Stragglers > 0)
// already-released spans may even hold a link the straggler's presence
// would change — only the Flush repair settles them. All methods are safe
// for concurrent use; Feed and Flush serialize on one mutex, so tap the
// correlator from the ingestion fan-in point, not from every publisher.
type StreamCorrelator struct {
	mu   sync.Mutex
	opts StreamOptions

	all   []*trace.Span        // live spans, in arrival order (checkpointed spans excluded)
	owned map[*trace.Span]bool // fed unparented: the correlator owns their ParentID

	buf          eventHeap // reorder buffer, min-heap in sweep order
	maxBegin     vclock.Time
	lastReleased *trace.Span // last span handed to the resolver, in sweep order
	released     int

	stacks  levelStacks
	levels  []trace.Level // sorted distinct levels seen
	corr    *corrTable    // correlation id -> resolved launch parent; survives checkpoints
	pending map[uint64][]pendingExec

	// rel holds the live released spans per level, in sweep order with
	// running prefix maxima over End — the index the straggler repair uses
	// to collect every span overlapping a repair window in O(log n + k).
	rel levelRuns
	// execs tracks the live correlator-owned execution spans by
	// correlation id, so a repair that moves a launch's parent can follow
	// the correlation to execs outside the repair window.
	execs map[uint64][]*trace.Span

	degraded    bool
	windowStart vclock.Time
	windowEnd   vclock.Time
	winCands    []*trace.Span // possible containers for the deferred spans
	winDeferred []*trace.Span // spans awaiting the window's interval trees
	windows     int

	stragglers     []*trace.Span // arrived behind the release point; Flush repairs
	stragglersSeen int
	repaired       int // spans re-correlated by straggler repair, cumulative

	ckpt       []ckptSegment // immutable finalized history, oldest first
	ckptSpans  int
	ckptMaxEnd vclock.Time
	reopens    int
	foldCheck  int // released count at the last automatic fold attempt
}

// ckptSegment is one immutable fold of finalized spans, in canonical
// order. The owned bitset remembers which spans the correlator owns, so a
// reopen (a straggler reaching behind the checkpoint horizon) can restore
// the live owned set exactly.
type ckptSegment struct {
	spans []*trace.Span
	owned []uint64 // bitset over spans
}

// pendingExec is an execution span waiting for its launch to resolve. The
// containment fallback (the batch second pass) is computed at arrival,
// while the ancestor stacks still hold the exec's position, and applied if
// the launch never resolves to a parent. A straggler repair refreshes the
// fallback for pending execs inside its window.
type pendingExec struct {
	span        *trace.Span
	containment uint64
}

// NewStreamCorrelator returns an empty streaming correlator.
func NewStreamCorrelator(opts StreamOptions) *StreamCorrelator {
	return &StreamCorrelator{
		opts:    opts,
		owned:   make(map[*trace.Span]bool),
		corr:    newSparseCorrTable(),
		pending: make(map[uint64][]pendingExec),
		execs:   make(map[uint64][]*trace.Span),
	}
}

// Publish implements trace.Collector, so the correlator can tap a span
// stream directly (e.g. behind trace.Memory.SetTap or trace.Server.SetTap).
func (sc *StreamCorrelator) Publish(spans ...*trace.Span) { sc.Feed(spans...) }

// Feed consumes the next spans in arrival order, resolving every parent
// the stream's progress allows.
func (sc *StreamCorrelator) Feed(spans ...*trace.Span) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for _, s := range spans {
		if s == nil {
			continue
		}
		if sc.opts.Isolated {
			s = s.Clone()
		}
		sc.all = append(sc.all, s)
		if s.ParentID == 0 {
			sc.owned[s] = true
		}
		if sc.lastReleased != nil && compareEvents(s, sc.lastReleased) <= 0 {
			// Arrived behind the release point: out-of-window straggler.
			sc.stragglers = append(sc.stragglers, s)
			sc.stragglersSeen++
			continue
		}
		heap.Push(&sc.buf, s)
		if s.Begin > sc.maxBegin {
			sc.maxBegin = s.Begin
		}
	}
	sc.drain(sc.maxBegin - vclock.Time(sc.opts.ReorderWindow))
	if sc.opts.Retain > 0 && sc.released-sc.foldCheck >= autoFoldEvery {
		sc.foldCheck = sc.released
		sc.fold()
	}
}

// drain releases buffered spans whose begin the watermark has passed, in
// sweep order, into the resolver.
func (sc *StreamCorrelator) drain(watermark vclock.Time) {
	for len(sc.buf) > 0 && sc.buf[0].Begin <= watermark {
		s := heap.Pop(&sc.buf).(*trace.Span)
		sc.resolve(s)
		sc.noteReleased(s)
		sc.lastReleased = s
		sc.released++
	}
}

// noteReleased records a span the resolver has processed in the released
// timeline indexes the straggler repair queries.
func (sc *StreamCorrelator) noteReleased(s *trace.Span) {
	sc.rel.slot(s.Level).push(s)
	if s.Kind == trace.KindExec && s.CorrelationID != 0 && sc.owned[s] {
		sc.execs[s.CorrelationID] = append(sc.execs[s.CorrelationID], s)
	}
}

// Flush finalizes everything the stream could not: it releases the
// reorder buffer, closes an open degraded window, repairs any stragglers
// that arrived behind the release point (re-correlating just the spans
// overlapping their window), and applies the containment fallback to
// execution spans whose launch never resolved — so the final parent
// assignment is exactly what CorrelateWith would produce. The stream
// remains usable: later Feed calls continue from the flushed state.
func (sc *StreamCorrelator) Flush() {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.drain(vclock.Time(math.MaxInt64))
	if sc.degraded {
		sc.closeWindow()
	}
	if len(sc.stragglers) > 0 {
		sc.repair()
	}
	for corr, waiting := range sc.pending {
		for _, p := range waiting {
			if p.span.ParentID == 0 && p.containment != 0 {
				p.span.ParentID = p.containment
			}
		}
		delete(sc.pending, corr)
	}
}

// Reset discards every accumulated span and all resolver state — live and
// checkpointed — returning the correlator to empty, the streaming
// counterpart of trace.Memory.Reset for when the collector the correlator
// taps is reset between independent evaluation runs. The progress counters
// (stragglers, degraded windows, repairs, checkpoints) restart from zero
// too. Like Memory.Reset, it is not atomic with respect to in-flight
// feeds: quiesce publishers first.
func (sc *StreamCorrelator) Reset() {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.all = nil
	sc.owned = make(map[*trace.Span]bool)
	sc.buf = nil
	sc.maxBegin = 0
	sc.lastReleased = nil
	sc.released = 0
	sc.stacks = levelStacks{}
	sc.levels = nil
	sc.corr = newSparseCorrTable()
	sc.pending = make(map[uint64][]pendingExec)
	sc.rel = levelRuns{}
	sc.execs = make(map[uint64][]*trace.Span)
	sc.degraded = false
	sc.windowStart, sc.windowEnd = 0, 0
	sc.winCands, sc.winDeferred = nil, nil
	sc.windows = 0
	sc.stragglers = nil
	sc.stragglersSeen = 0
	sc.repaired = 0
	sc.ckpt = nil
	sc.ckptSpans = 0
	sc.ckptMaxEnd = 0
	sc.reopens = 0
	sc.foldCheck = 0
}

// resolve advances the online sweep by one span, in sweep order.
func (sc *StreamCorrelator) resolve(s *trace.Span) {
	if sc.degraded && s.Begin >= sc.windowEnd {
		sc.closeWindow()
	}
	sc.noteLevel(s.Level)

	st := sc.stacks.slot(s.Level)
	popDead(st, s.Begin)
	if stack := *st; len(stack) > 0 && sc.deeperLevelSeen(s.Level) && stackConflict(stack[len(stack)-1], s) {
		// Pipelined overlap at a parent-capable level: degrade this window
		// to the interval-tree fallback, like the batch auto strategy —
		// but only until the overlap clears, not for the whole stream.
		if !sc.degraded {
			sc.openWindow(stack[len(stack)-1], s.Begin)
		}
		if s.End > sc.windowEnd {
			sc.windowEnd = s.End
		}
	}

	if sc.degraded {
		sc.winCands = append(sc.winCands, s)
		if s.ParentID == 0 {
			sc.winDeferred = append(sc.winDeferred, s)
		}
	} else if s.ParentID == 0 {
		if s.Kind != trace.KindExec {
			if p := sc.stacks.parent(sc.levels, s); p != nil {
				s.ParentID = p.ID
			}
			if s.Kind == trace.KindLaunch && s.CorrelationID != 0 {
				sc.corr.set(s.CorrelationID, s.ParentID)
				sc.launchResolved(s.CorrelationID, s.ParentID)
			}
		} else {
			sc.resolveExec(s, func() uint64 {
				if p := sc.stacks.parent(sc.levels, s); p != nil {
					return p.ID
				}
				return 0
			})
		}
	}

	*st = append(*st, s)
}

// resolveExec links an execution span through its launch's correlation id
// when the launch has already resolved to a parent; otherwise the span
// waits in the pending table with its containment fallback (computed now,
// while the stacks hold this position) for the launch — or Flush.
func (sc *StreamCorrelator) resolveExec(s *trace.Span, containment func() uint64) {
	if s.CorrelationID != 0 {
		if pid := sc.corr.get(s.CorrelationID); pid != 0 {
			s.ParentID = pid
			return
		}
	}
	c := containment()
	if s.CorrelationID == 0 {
		// No launch can ever resolve it: containment is final, exactly the
		// batch second pass.
		if c != 0 {
			s.ParentID = c
		}
		return
	}
	sc.pending[s.CorrelationID] = append(sc.pending[s.CorrelationID], pendingExec{span: s, containment: c})
}

// launchResolved resolves the execution spans waiting on a launch the
// moment the launch's own parent is known: they inherit it, or take their
// stored containment fallback when the launch found none — matching the
// batch second pass.
func (sc *StreamCorrelator) launchResolved(corr, parent uint64) {
	waiting := sc.pending[corr]
	if len(waiting) == 0 {
		return
	}
	delete(sc.pending, corr)
	for _, p := range waiting {
		pid := parent
		if pid == 0 {
			pid = p.containment
		}
		if pid != 0 && p.span.ParentID == 0 {
			p.span.ParentID = pid
		}
	}
}

// openWindow starts a degraded window at the current sweep position. The
// candidate set is seeded with every span still active on any stack: a
// container of a span inside the window either is active now or arrives
// during the window. The window's start position gates checkpoint folding
// while the window stays open.
func (sc *StreamCorrelator) openWindow(top *trace.Span, at vclock.Time) {
	sc.degraded = true
	sc.windows++
	sc.windowStart = at
	sc.windowEnd = top.End
	for _, l := range sc.levels {
		sc.winCands = append(sc.winCands, *sc.stacks.slot(l)...)
	}
}

// closeWindow resolves the window's deferred spans through per-level
// interval trees built over the window candidates — the correlateTree
// logic, scoped to just this stretch of the stream.
func (sc *StreamCorrelator) closeWindow() {
	deferred, cands := sc.winDeferred, sc.winCands
	sc.degraded = false
	sc.windowStart, sc.windowEnd = 0, 0
	sc.winCands = nil
	sc.winDeferred = nil
	if len(deferred) == 0 {
		return
	}

	trees := buildLevelTrees(cands)
	parentAt := func(s *trace.Span) uint64 {
		if p := treeParentAt(sc.levels, func(l trace.Level) *interval.Tree { return trees[l] }, s); p != nil {
			return p.ID
		}
		return 0
	}

	for _, s := range deferred {
		if s.ParentID != 0 {
			continue // resolved meanwhile (a launch landed for it)
		}
		if s.Kind != trace.KindExec {
			s.ParentID = parentAt(s)
			if s.Kind == trace.KindLaunch && s.CorrelationID != 0 {
				sc.corr.set(s.CorrelationID, s.ParentID)
				sc.launchResolved(s.CorrelationID, s.ParentID)
			}
			continue
		}
		sc.resolveExec(s, func() uint64 { return parentAt(s) })
	}
}

// buildLevelTrees builds one interval tree per level over the candidate
// spans. Candidates must be begin-ascending within each level — the order
// the batch tree path gets from the trace's per-level index — so the
// trees' insertion-order tie-breaks match batch correlation exactly.
func buildLevelTrees(cands []*trace.Span) map[trace.Level]*interval.Tree {
	trees := make(map[trace.Level]*interval.Tree)
	for _, c := range cands {
		t := trees[c.Level]
		if t == nil {
			t = interval.New()
			trees[c.Level] = t
		}
		t.Insert(interval.Interval{Start: c.Begin, End: c.End, Value: c})
	}
	return trees
}

// repair is the straggler path: spans arrived so far out of order that the
// online sweep's answers inside their window may be stale. Instead of
// re-running batch correlation over the whole accumulated trace, the
// repair re-correlates only the repair region — every released span whose
// interval overlaps the stragglers' combined window [lo, hi]. That set
// provably contains every span whose batch parent the stragglers' presence
// can change (a straggler can only parent spans it contains, and every
// container of an affected span overlaps the window too), so the result is
// exactly the batch assignment at a cost proportional to the window's
// span population, not the stream's length. Launches whose parent moved
// propagate through the correlation table to execution spans outside the
// window. Stragglers behind the checkpoint horizon first reopen the
// checkpoint so the region can include folded spans.
func (sc *StreamCorrelator) repair() {
	stragglers := sc.stragglers
	sc.stragglers = nil

	// Independent stragglers repair independently: cluster the straggler
	// windows by interval overlap, so one stray early arrival does not
	// widen the region around a burst of late ones.
	slices.SortFunc(stragglers, compareEvents)
	type window struct{ lo, hi vclock.Time }
	var clusters []window
	for _, s := range stragglers {
		if n := len(clusters); n > 0 && s.Begin <= clusters[n-1].hi {
			if s.End > clusters[n-1].hi {
				clusters[n-1].hi = s.End
			}
		} else {
			clusters = append(clusters, window{lo: s.Begin, hi: s.End})
		}
	}
	if sc.ckptSpans > 0 && sc.ckptMaxEnd >= clusters[0].lo {
		sc.reopen()
	}

	// Splice the stragglers into the released timeline: the per-level
	// runs (one merge per touched level, not one O(tail) insert per
	// straggler), the ancestor stacks (they may contain or parent spans
	// that arrive after this Flush), and the exec-by-correlation table.
	byLevel := make(map[trace.Level][]*trace.Span)
	for _, s := range stragglers {
		sc.noteLevel(s.Level)
		byLevel[s.Level] = append(byLevel[s.Level], s) // sorted: stragglers are
		sc.stackInsert(s)
		if s.Kind == trace.KindExec && s.CorrelationID != 0 && sc.owned[s] {
			sc.execs[s.CorrelationID] = append(sc.execs[s.CorrelationID], s)
		}
	}
	for l, batch := range byLevel {
		sc.rel.slot(l).mergeIn(batch)
	}
	sc.released += len(stragglers)

	pendingSet := make(map[*trace.Span]bool)
	for _, waiting := range sc.pending {
		for i := range waiting {
			pendingSet[waiting[i].span] = true
		}
	}

	dirty := make(map[uint64]uint64)
	var cands []*trace.Span
	for _, w := range clusters {
		// The repair region: every released span overlapping [lo, hi], per
		// level in sweep order (so the trees tie-break like batch).
		cands = cands[:0]
		for _, l := range sc.levels {
			cands = sc.rel.slot(l).overlapping(w.lo, w.hi, cands)
		}

		// Reset every owned span in the region: the stragglers may change
		// any of their parents, and unaffected ones re-derive the same
		// parent — the region contains all of their containers.
		for _, c := range cands {
			if sc.owned[c] {
				c.ParentID = 0
				sc.repaired++
			}
		}

		trees := buildLevelTrees(cands)
		parentAt := func(s *trace.Span) uint64 {
			if p := treeParentAt(sc.levels, func(l trace.Level) *interval.Tree { return trees[l] }, s); p != nil {
				return p.ID
			}
			return 0
		}

		// Pass 1: launch and synchronous spans re-resolve by containment.
		// Launches whose parent moved mark their correlation id dirty.
		for _, s := range cands {
			if !sc.owned[s] || s.Kind == trace.KindExec {
				continue
			}
			s.ParentID = parentAt(s)
			if s.Kind == trace.KindLaunch && s.CorrelationID != 0 {
				old := sc.corr.get(s.CorrelationID)
				sc.corr.set(s.CorrelationID, s.ParentID)
				if old != s.ParentID {
					// Changed — or newly resolved: a straggler launch whose
					// exec a previous Flush finalized by containment must
					// now propagate the correlation, like batch would.
					dirty[s.CorrelationID] = s.ParentID
				}
			}
		}

		// Refresh the stored containment fallback of pending execs inside
		// the window: a straggler may be a tighter container than the one
		// recorded at arrival. (Outside the windows the candidate set is
		// unchanged, so the stored fallback stands.)
		for _, waiting := range sc.pending {
			for i := range waiting {
				p := waiting[i].span
				if p.Begin <= w.hi && p.End >= w.lo {
					waiting[i].containment = parentAt(p)
				}
			}
		}

		// Pass 2: execution spans in the region inherit through the
		// (possibly repaired) correlation table; device-only records and
		// execs whose launch never arrived and was already finalized take
		// containment. Still-pending execs keep waiting — their refreshed
		// fallback applies at the end of Flush.
		for _, s := range cands {
			if !sc.owned[s] || s.Kind != trace.KindExec || s.ParentID != 0 {
				continue
			}
			if s.CorrelationID != 0 {
				if pid := sc.corr.get(s.CorrelationID); pid != 0 {
					s.ParentID = pid
				} else if !pendingSet[s] {
					s.ParentID = parentAt(s)
				}
			} else {
				s.ParentID = parentAt(s)
			}
		}
	}

	// A straggler launch resolves the execs that were pending on its
	// correlation id, wherever they sit in the stream.
	for corr, waiting := range sc.pending {
		if pid := sc.corr.get(corr); pid != 0 {
			delete(sc.pending, corr)
			for _, p := range waiting {
				if p.span.ParentID == 0 {
					p.span.ParentID = pid
				}
			}
		}
	}

	// Execs outside the regions whose launch's parent moved follow the
	// correlation id. (An unresolved launch parent propagates nothing:
	// batch leaves such execs to containment, which they already hold.)
	for corr, pid := range dirty {
		if pid == 0 {
			continue
		}
		for _, e := range sc.execs[corr] {
			if e.ParentID != pid && sc.owned[e] {
				e.ParentID = pid
			}
		}
	}
}

// stackInsert places a repaired straggler at its begin-order position on
// its level's ancestor stack, so spans released after the repair can still
// find it as a container.
func (sc *StreamCorrelator) stackInsert(s *trace.Span) {
	st := sc.stacks.slot(s.Level)
	i := sort.Search(len(*st), func(i int) bool { return (*st)[i].Begin > s.Begin })
	*st = slices.Insert(*st, i, s)
}

// noteLevel records a stack level the stream has seen.
func (sc *StreamCorrelator) noteLevel(l trace.Level) {
	i, found := slices.BinarySearch(sc.levels, l)
	if !found {
		sc.levels = slices.Insert(sc.levels, i, l)
	}
}

// deeperLevelSeen reports whether any level below l has appeared — only
// then can spans at l be queried as parents, making overlap at l matter
// (the batch eligibility check likewise skips the deepest level).
func (sc *StreamCorrelator) deeperLevelSeen(l trace.Level) bool {
	return len(sc.levels) > 0 && sc.levels[len(sc.levels)-1] > l
}

// finalizedBefore returns the horizon behind which live spans are
// finalized: the sweep has passed them by more than ReorderWindow+Retain,
// no open degraded window reaches back to them, no execution span behind
// it still waits for its launch, and no straggler awaiting repair begins
// before it. Spans ending before the horizon can fold into a checkpoint.
func (sc *StreamCorrelator) finalizedBefore() vclock.Time {
	f := sc.maxBegin - vclock.Time(sc.opts.ReorderWindow) - vclock.Time(sc.opts.Retain)
	if sc.degraded && sc.windowStart < f {
		f = sc.windowStart
	}
	for _, waiting := range sc.pending {
		for _, p := range waiting {
			if p.span.Begin < f {
				f = p.span.Begin
			}
		}
	}
	for _, s := range sc.stragglers {
		if s.Begin < f {
			f = s.Begin
		}
	}
	return f
}

// Checkpoint folds every finalized live span (see StreamOptions.Retain
// for the finalization horizon) into an immutable checkpoint segment and
// returns the number folded. Checkpointed spans keep their settled parent
// links and stay visible through Trace and SnapshotTrace — the fold only
// retires them from the live resolver state, so a long-running stream's
// repairable tail stays bounded. Folding is exact: a straggler that later
// reaches behind the checkpoint horizon reopens it. With
// StreamOptions.Retain set, Feed folds automatically; Checkpoint is the
// on-demand form.
func (sc *StreamCorrelator) Checkpoint() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.fold()
}

// fold moves finalized released spans out of the live state into a new
// checkpoint segment. Costs O(live); amortize through autoFoldEvery.
func (sc *StreamCorrelator) fold() int {
	f := sc.finalizedBefore()
	var folded []*trace.Span
	for _, l := range sc.levels {
		r := sc.rel.slot(l)
		folded = r.evictBefore(f, folded)
	}
	if len(folded) == 0 {
		return 0
	}

	foldedSet := make(map[*trace.Span]bool, len(folded))
	for _, s := range folded {
		foldedSet[s] = true
	}

	// The live arrival list shrinks to the survivors.
	live := sc.all[:0]
	for _, s := range sc.all {
		if !foldedSet[s] {
			live = append(live, s)
		}
	}
	clear(sc.all[len(live):])
	sc.all = live

	// Folded spans may still sit (dead) on the ancestor stacks.
	for _, l := range sc.levels {
		st := sc.stacks.slot(l)
		keep := (*st)[:0]
		for _, s := range *st {
			if !foldedSet[s] {
				keep = append(keep, s)
			}
		}
		clear((*st)[len(keep):])
		*st = keep
	}

	// The segment stores the spans in canonical order with the owned set
	// as a bitset, so a reopen can restore the live state exactly. The
	// per-level eviction emits level-grouped begin-ascending runs; MergeRuns
	// sorts the concatenation privately.
	spans := trace.MergeRuns([][]*trace.Span{folded})
	seg := ckptSegment{spans: spans, owned: make([]uint64, (len(spans)+63)/64)}
	for i, s := range spans {
		if sc.owned[s] {
			seg.owned[i/64] |= 1 << (i % 64)
			delete(sc.owned, s)
		}
		if s.End > sc.ckptMaxEnd {
			sc.ckptMaxEnd = s.End
		}
		if s.Kind == trace.KindExec && s.CorrelationID != 0 {
			sc.dropExec(s)
		}
	}
	sc.ckpt = append(sc.ckpt, seg)
	sc.ckptSpans += len(spans)

	// Keep the segment count in check so Trace's k-way merge stays
	// shallow: compact all segments into one once enough accumulate.
	if len(sc.ckpt) >= 64 {
		sc.compact()
	}
	return len(spans)
}

// dropExec removes a folded exec from the live exec-by-correlation table.
func (sc *StreamCorrelator) dropExec(s *trace.Span) {
	es := sc.execs[s.CorrelationID]
	for i, e := range es {
		if e == s {
			es[i] = es[len(es)-1]
			es = es[:len(es)-1]
			break
		}
	}
	if len(es) == 0 {
		delete(sc.execs, s.CorrelationID)
	} else {
		sc.execs[s.CorrelationID] = es
	}
}

// compact merges every checkpoint segment into one.
func (sc *StreamCorrelator) compact() {
	runs := make([][]*trace.Span, len(sc.ckpt))
	ownedSet := make(map[*trace.Span]bool)
	for i, seg := range sc.ckpt {
		runs[i] = seg.spans
		for j, s := range seg.spans {
			if seg.owned[j/64]&(1<<(j%64)) != 0 {
				ownedSet[s] = true
			}
		}
	}
	spans := trace.MergeRuns(runs)
	seg := ckptSegment{spans: spans, owned: make([]uint64, (len(spans)+63)/64)}
	for i, s := range spans {
		if ownedSet[s] {
			seg.owned[i/64] |= 1 << (i % 64)
		}
	}
	sc.ckpt = []ckptSegment{seg}
}

// reopen folds the checkpoint back into the live state — the rare path a
// straggler takes when its repair window reaches behind the checkpoint
// horizon. Exact but O(total spans): Retain trades this cost against live
// memory.
func (sc *StreamCorrelator) reopen() {
	sc.reopens++

	// Every released span, live and checkpointed, rejoins the released
	// timeline in sweep order.
	var released []*trace.Span
	for _, l := range sc.levels {
		released = append(released, sc.rel.slot(l).spans...)
	}
	for _, seg := range sc.ckpt {
		for i, s := range seg.spans {
			sc.all = append(sc.all, s)
			if seg.owned[i/64]&(1<<(i%64)) != 0 {
				sc.owned[s] = true
			}
		}
		released = append(released, seg.spans...)
	}
	slices.SortFunc(released, compareEvents)

	sc.rel = levelRuns{}
	sc.execs = make(map[uint64][]*trace.Span)
	for _, s := range released {
		sc.noteReleased(s)
	}

	sc.ckpt = nil
	sc.ckptSpans = 0
	sc.ckptMaxEnd = 0
}

// Trace returns the accumulated spans — checkpointed history and live tail
// merged — as a canonically ordered trace. The spans are shared with the
// correlator (and, unless the correlator is Isolated, with whoever fed
// them): parents resolved later are visible through the returned trace,
// exactly like trace.Memory.Trace.
func (sc *StreamCorrelator) Trace() *trace.Trace {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return &trace.Trace{Spans: sc.mergedSpans()}
}

// mergedSpans k-way-merges the sorted checkpoint segments with the live
// tail. Callers must hold sc.mu.
func (sc *StreamCorrelator) mergedSpans() []*trace.Span {
	runs := make([][]*trace.Span, 0, len(sc.ckpt)+1)
	for _, seg := range sc.ckpt {
		runs = append(runs, seg.spans)
	}
	if len(sc.all) > 0 {
		// The live tail is in arrival order; MergeRuns sorts a private
		// copy when needed and never mutates the run in place.
		runs = append(runs, sc.all)
	}
	return trace.MergeRuns(runs)
}

// SnapshotTrace is Trace with every span deep-copied: a point-in-time
// snapshot safe to read and mutate while the stream keeps feeding.
func (sc *StreamCorrelator) SnapshotTrace() *trace.Trace {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	spans := sc.mergedSpans()
	for i, s := range spans {
		spans[i] = s.Clone()
	}
	return &trace.Trace{Spans: spans}
}

// StreamStats describes a correlator's progress, for observability and
// tests.
type StreamStats struct {
	Fed             int // spans consumed by Feed, including checkpointed ones
	Released        int // spans the resolver has processed in sweep order
	Buffered        int // spans waiting in the reorder buffer
	PendingExecs    int // execution spans waiting for their launch
	Stragglers      int // spans that arrived behind the release point, ever
	DegradedWindows int // windows degraded to the interval-tree fallback
	Repaired        int // spans re-correlated by straggler repair, ever
	Live            int // spans held in live, repairable state
	Checkpointed    int // spans folded into immutable checkpoint segments
	Reopens         int // checkpoints reopened by a deep straggler repair
}

// Stats returns a snapshot of the stream's progress counters.
func (sc *StreamCorrelator) Stats() StreamStats {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	pending := 0
	for _, w := range sc.pending {
		pending += len(w)
	}
	return StreamStats{
		Fed:             len(sc.all) + sc.ckptSpans,
		Released:        sc.released,
		Buffered:        len(sc.buf),
		PendingExecs:    pending,
		Stragglers:      sc.stragglersSeen,
		DegradedWindows: sc.windows,
		Repaired:        sc.repaired,
		Live:            len(sc.all),
		Checkpointed:    sc.ckptSpans,
		Reopens:         sc.reopens,
	}
}

// levelRun is the released-span timeline of one level: spans in sweep
// order plus a running prefix maximum over End. The prefix maxima bound
// the leftward scan of an overlap query — the scan stops as soon as every
// earlier span provably ended before the window — so collecting a repair
// region costs O(log n) plus the region's population, not a pass over the
// level.
type levelRun struct {
	spans  []*trace.Span
	maxEnd []vclock.Time // maxEnd[i] = max of spans[j].End for j <= i
}

// push appends a span released in sweep order.
func (r *levelRun) push(s *trace.Span) {
	m := s.End
	if n := len(r.maxEnd); n > 0 && r.maxEnd[n-1] > m {
		m = r.maxEnd[n-1]
	}
	r.spans = append(r.spans, s)
	r.maxEnd = append(r.maxEnd, m)
}

// mergeIn splices a sweep-ordered batch of stragglers into the run,
// rebuilding the prefix maxima from the first insertion point — O(batch +
// tail) for the whole batch, and the tail is short for the recent
// stragglers a reorder window just missed.
func (r *levelRun) mergeIn(batch []*trace.Span) {
	if len(batch) == 0 {
		return
	}
	n := len(r.spans)
	first, _ := slices.BinarySearchFunc(r.spans, batch[0], compareEvents)
	// Merge in place, backwards from the grown end: every write lands
	// beyond the unread prefix, so nothing is clobbered early and no
	// full-run copy is allocated.
	r.spans = append(r.spans, batch...)
	i, j, w := n-1, len(batch)-1, len(r.spans)-1
	for j >= 0 && i >= first {
		if compareEvents(r.spans[i], batch[j]) > 0 {
			r.spans[w] = r.spans[i]
			i--
		} else {
			r.spans[w] = batch[j]
			j--
		}
		w--
	}
	for ; j >= 0; j-- {
		r.spans[w] = batch[j]
		w--
	}

	r.maxEnd = slices.Grow(r.maxEnd[:first], len(r.spans)-first)
	m := vclock.Time(math.MinInt64)
	if first > 0 {
		m = r.maxEnd[first-1]
	}
	for k := first; k < len(r.spans); k++ {
		if r.spans[k].End > m {
			m = r.spans[k].End
		}
		r.maxEnd = append(r.maxEnd, m)
	}
}

// overlapping appends every span overlapping [lo, hi] to dst, in sweep
// order, and returns the extended slice.
func (r *levelRun) overlapping(lo, hi vclock.Time, dst []*trace.Span) []*trace.Span {
	end := sort.Search(len(r.spans), func(i int) bool { return r.spans[i].Begin > hi })
	mark := len(dst)
	for i := end - 1; i >= 0; i-- {
		if r.maxEnd[i] < lo {
			break // everything earlier ended before the window
		}
		if r.spans[i].End >= lo {
			dst = append(dst, r.spans[i])
		}
	}
	slices.Reverse(dst[mark:])
	return dst
}

// evictBefore removes every span ending before f, appending them to dst in
// begin order, and rebuilds the run over the survivors.
func (r *levelRun) evictBefore(f vclock.Time, dst []*trace.Span) []*trace.Span {
	mark := len(dst)
	keep := r.spans[:0]
	for _, s := range r.spans {
		if s.End < f {
			dst = append(dst, s)
		} else {
			keep = append(keep, s)
		}
	}
	if len(dst) == mark {
		return dst
	}
	clear(r.spans[len(keep):])
	r.spans = keep
	r.maxEnd = r.maxEnd[:0]
	var m vclock.Time
	for i, s := range keep {
		if i == 0 || s.End > m {
			m = s.End
		}
		r.maxEnd = append(r.maxEnd, m)
	}
	return dst
}

// levelRuns holds one levelRun per stack level, the paper's five in a
// flat array (like levelStacks) and exotic levels in an overflow map.
type levelRuns struct {
	flat     [16]levelRun
	overflow map[trace.Level]*levelRun
}

// slot returns the run for a level, creating the overflow entry on first
// use.
func (lr *levelRuns) slot(l trace.Level) *levelRun {
	if l >= 0 && int(l) < len(lr.flat) {
		return &lr.flat[l]
	}
	if r, ok := lr.overflow[l]; ok {
		return r
	}
	if lr.overflow == nil {
		lr.overflow = make(map[trace.Level]*levelRun)
	}
	r := new(levelRun)
	lr.overflow[l] = r
	return r
}

// eventHeap is a min-heap of spans in sweep order (compareEvents), backing
// the reorder buffer.
type eventHeap []*trace.Span

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return compareEvents(h[i], h[j]) < 0 }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*trace.Span)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}
