package core_test

import (
	"sync"
	"testing"
	"time"

	"xsp/internal/core"
	"xsp/internal/segio"
	"xsp/internal/trace"
	"xsp/internal/workload"
)

// TestDurableStreamSoak is the durability tentpole's endurance run: a
// sustained-pipelined stream (XSP_SOAK_SPANS long, 500k by default) fed
// through FeedLogged over a real directory store, with one full process
// restart — close, reopen, RecoverStream — in the middle, and a
// concurrent observer polling Stats/DurabilityErr the whole time the way
// a monitoring endpoint would. Meant for -race: the observer and the
// restart cross every lock the durable path takes. The flat-memory
// bounds of the RAM soak must survive the durable upgrade, and so must
// span conservation across the restart.
func TestDurableStreamSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test: skipped in -short")
	}
	total := soakSpans(t)
	const perRep = 25_000

	fs, err := segio.DirFS(t.TempDir())
	if err != nil {
		t.Fatalf("dir fs: %v", err)
	}
	opts := core.StreamOptions{
		ReorderWindow:  48,
		Retain:         4_096,
		CorrRetain:     16_384,
		MaxWindowSpans: 2_048,
	}
	var store *segio.Store
	open := func() *core.StreamCorrelator {
		st, rec, err := segio.Open(fs, segio.Options{})
		if err != nil {
			t.Fatalf("open store: %v", err)
		}
		if len(rec.Quarantined) != 0 {
			t.Fatalf("clean restart quarantined %v", rec.Quarantined)
		}
		store = st
		opts.Store = st
		sc, err := core.RecoverStream(opts, rec)
		if err != nil {
			t.Fatalf("recover stream: %v", err)
		}
		return sc
	}
	sc := open()

	// The observer races every feed, fold, and the restart below; under
	// -race it proves the durable surface holds its locks.
	var mu sync.Mutex // guards sc across the restart swap
	current := func() *core.StreamCorrelator {
		mu.Lock()
		defer mu.Unlock()
		return sc
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c := current()
			_ = c.Stats()
			if err := c.DurabilityErr(); err != nil {
				return // main goroutine asserts; just stop hammering
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	fed, batchID := 0, uint64(0)
	restarted := false
	var maxLive, maxSegments, maxFiles int
	workload.Stream(workload.StreamingSpec{
		Trace:       workload.SyntheticSpec{Spans: perRep, Streams: 3, Seed: 1},
		BatchSize:   1_000,
		ReorderSkew: 48,
		Repeat:      (total + perRep - 1) / perRep,
		Seed:        9,
	}, func(b []*trace.Span) bool {
		if !restarted && fed >= total/2 {
			restarted = true
			if err := store.Close(); err != nil {
				t.Fatalf("close store mid-soak: %v", err)
			}
			mu.Lock()
			sc = open()
			mu.Unlock()
		}
		batchID++
		if err := sc.FeedLogged(batchID, b...); err != nil {
			t.Fatalf("batch %d not acked on a healthy disk: %v", batchID, err)
		}
		fed += len(b)
		st := sc.Stats()
		maxLive = max(maxLive, st.Live)
		maxSegments = max(maxSegments, st.Segments)
		maxFiles = max(maxFiles, store.Stats().Segments)
		return fed < total
	})
	close(stop)
	wg.Wait()

	sc.Flush()
	if err := sc.DurabilityErr(); err != nil {
		t.Fatalf("durability error latched on a healthy disk: %v", err)
	}
	if !restarted {
		t.Fatal("soak never restarted — not exercising recovery")
	}

	// The RAM soak's flat-memory story must hold with the store attached:
	// the ladder spills to files but the in-memory ladder and the on-disk
	// file count both stay logarithmic, not O(stream).
	if maxLive > 40_000 {
		t.Fatalf("live spans peaked at %d of %d fed — fold horizon stalling", maxLive, fed)
	}
	if maxSegments > 24 {
		t.Fatalf("checkpoint segments peaked at %d — geometric compaction not holding", maxSegments)
	}
	if maxFiles > 32 {
		t.Fatalf("segment files peaked at %d — compaction not dropping superseded files", maxFiles)
	}

	final := sc.Stats()
	if final.Live+final.Checkpointed != fed {
		t.Fatalf("conservation broken across restart: live %d + checkpointed %d != fed %d",
			final.Live, final.Checkpointed, fed)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("close store: %v", err)
	}
}
