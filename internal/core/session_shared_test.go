package core

import (
	"sync"
	"testing"

	"xsp/internal/trace"
)

// countSpanNames tallies model-pipeline span names in a trace.
func countSpanNames(tr *trace.Trace) map[string]int {
	counts := make(map[string]int)
	for _, sp := range tr.Spans {
		counts[sp.Name]++
	}
	return counts
}

// A shared explicit Options.Collector must see each span of a run exactly
// once even when the first, ambiguous attempt forces a serialized re-run:
// the attempt profiles into a scratch collector and is abandoned, not
// published. This is the session-level twin of the application-env fix.
func TestSessionSharedCollectorSerializedRerunDoesNotDoubleCount(t *testing.T) {
	shared := trace.NewMemory()
	s := newSession()
	res, err := s.Profile(resnetGraph(t, 256), Options{
		Levels: MLG, Pipelined: true, ActivityOnly: true, Collector: shared,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Serialized {
		t.Fatal("pipelined activity-only run resolved without a serialized re-run")
	}
	counts := countSpanNames(shared.Trace())
	for _, name := range []string{"evaluate", "input_preprocess", "model_prediction", "output_postprocess"} {
		if counts[name] != 1 {
			t.Fatalf("%s appears %d times in the shared collector, want 1 (abandoned first attempt leaked)",
				name, counts[name])
		}
	}
}

// The promoted path for a shared collector: an unambiguous run lands in it
// exactly once, parents already resolved, and the collector's prior
// contents stay untouched.
func TestSessionSharedCollectorPromotesUnambiguousRun(t *testing.T) {
	shared := trace.NewMemory()
	preexisting := &trace.Span{ID: trace.NewSpanID(), Level: trace.LevelApplication, Name: "earlier-run", Begin: 0, End: 1}
	shared.Publish(preexisting)

	s := newSession()
	res, err := s.Profile(resnetGraph(t, 4), Options{Levels: MLG, Collector: shared})
	if err != nil {
		t.Fatal(err)
	}
	if res.Serialized {
		t.Fatal("small-batch nested run should not serialize")
	}
	tr := shared.Trace()
	if got, want := len(tr.Spans), len(res.Trace.Spans)+1; got != want {
		t.Fatalf("shared collector holds %d spans, want %d (run + pre-existing)", got, want)
	}
	if tr.Find("earlier-run") == nil {
		t.Fatal("promotion displaced the collector's prior contents")
	}
	predict := tr.Find("model_prediction")
	root := tr.Find("evaluate")
	if predict == nil || root == nil || predict.ParentID != root.ID {
		t.Fatal("promoted run lost its resolved parents")
	}
}

// spanCounter is a concurrency-safe collector double for tap assertions.
type spanCounter struct {
	mu    sync.Mutex
	spans []*trace.Span
}

func (c *spanCounter) Publish(spans ...*trace.Span) {
	c.mu.Lock()
	c.spans = append(c.spans, spans...)
	c.mu.Unlock()
}

// Options.Tap receives every span of the run exactly once — on the
// serialized-rerun path the abandoned speculative attempt never reaches
// the tap.
func TestSessionTapSeesRunExactlyOnce(t *testing.T) {
	tap := &spanCounter{}
	s := newSession()
	res, err := s.Profile(resnetGraph(t, 256), Options{
		Levels: MLG, Pipelined: true, ActivityOnly: true, Tap: tap,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Serialized {
		t.Fatal("pipelined activity-only run resolved without a serialized re-run")
	}
	if got, want := len(tap.spans), len(res.Trace.Spans); got != want {
		t.Fatalf("tap saw %d spans, run published %d (abandoned attempt tapped?)", got, want)
	}

	// And the unambiguous path: promotion forwards the batch to the tap.
	tap2 := &spanCounter{}
	res, err = s.Profile(resnetGraph(t, 4), Options{Levels: MLG, Tap: tap2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Serialized {
		t.Fatal("small-batch nested run should not serialize")
	}
	if got, want := len(tap2.spans), len(res.Trace.Spans); got != want {
		t.Fatalf("tap saw %d promoted spans, run published %d", got, want)
	}
}

// batchRecorder is a collector double that preserves publish-call
// boundaries, for asserting on delivery order and batching.
type batchRecorder struct {
	mu      sync.Mutex
	batches [][]*trace.Span
}

func (r *batchRecorder) Publish(spans ...*trace.Span) {
	b := make([]*trace.Span, len(spans))
	copy(b, spans)
	r.mu.Lock()
	r.batches = append(r.batches, b)
	r.mu.Unlock()
}

// A promoted speculative run must reach the tap in its original online
// publish order — replayed batch by batch — not as one canonical-order
// batch at promotion time. Online, the root "evaluate" span finishes
// (and publishes) after the model pipeline steps; a canonical-order
// promotion would deliver it first.
func TestSessionTapPromotedRunArrivesInOnlineOrder(t *testing.T) {
	tap := &batchRecorder{}
	s := newSession()
	res, err := s.Profile(resnetGraph(t, 4), Options{Levels: MLG, Tap: tap})
	if err != nil {
		t.Fatal(err)
	}
	if res.Serialized {
		t.Fatal("small-batch run should promote, not serialize")
	}
	if len(tap.batches) < 2 {
		t.Fatalf("tap saw %d batch(es); promotion must replay the run's publish calls, not one batch", len(tap.batches))
	}
	var flat []*trace.Span
	for _, b := range tap.batches {
		flat = append(flat, b...)
	}
	if got, want := len(flat), len(res.Trace.Spans); got != want {
		t.Fatalf("tap saw %d spans across batches, run published %d", got, want)
	}
	pos := func(name string) int {
		for i, sp := range flat {
			if sp.Name == name {
				return i
			}
		}
		t.Fatalf("tap never saw %q", name)
		return -1
	}
	if !(pos("input_preprocess") < pos("model_prediction") && pos("model_prediction") < pos("output_postprocess")) {
		t.Fatal("model pipeline spans arrived out of online publish order")
	}
	if pos("evaluate") < pos("output_postprocess") {
		t.Fatal("root span arrived before the pipeline finished: promotion delivered canonical order, not online order")
	}
	// Promotion happens after the attempt's Correlate, so replayed spans
	// carry resolved parents.
	root := res.Trace.Find("evaluate")
	predict := res.Trace.Find("model_prediction")
	if root == nil || predict == nil || predict.ParentID != root.ID {
		t.Fatal("replayed run lost its resolved parents")
	}
}

// A tap composes with the run's own collector only; shared collectors take
// their tap directly.
func TestSessionTapRejectsSharedCollector(t *testing.T) {
	s := newSession()
	tap := &spanCounter{}
	_, err := s.Profile(resnetGraph(t, 4), Options{Levels: ML, Collector: trace.NewMemory(), Tap: tap})
	if err == nil {
		t.Fatal("Options.Tap with an explicit Collector must error")
	}
	app := NewApplication("tapped")
	if _, err := app.Profile(newSession(), resnetGraph(t, 4), Options{Levels: ML, Tap: tap}); err == nil {
		t.Fatal("Options.Tap inside an application must error (use Application.SetTap)")
	}
}

// Application.SetTap: the tap follows the shared collector, seeing each
// prediction's spans exactly once across promoted and serialized runs.
func TestApplicationTapSeesEachPredictionOnce(t *testing.T) {
	app := NewApplication("tap-app")
	tap := &spanCounter{}
	app.SetTap(tap)
	s := newSession()

	res1, err := app.Profile(s, resnetGraph(t, 4), Options{Levels: MLG})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := app.Profile(s, resnetGraph(t, 256), Options{Levels: MLG, Pipelined: true, ActivityOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Serialized || !res2.Serialized {
		t.Fatalf("expected promote then serialize, got %v/%v", res1.Serialized, res2.Serialized)
	}

	tr := app.Finish()
	// Finish adds the application root, which was published at
	// NewApplication time through the collector — tapped as well.
	if got, want := len(tap.spans), len(tr.Spans); got != want {
		t.Fatalf("tap saw %d spans, application trace has %d", got, want)
	}
	counts := countSpanNames(&trace.Trace{Spans: tap.spans})
	if counts["model_prediction"] != 2 {
		t.Fatalf("tap saw %d predictions, want 2", counts["model_prediction"])
	}
}
