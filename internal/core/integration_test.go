package core_test

import (
	"net/http/httptest"
	"strings"
	"testing"

	"xsp/internal/analysis"
	"xsp/internal/core"
	"xsp/internal/cupti"
	"xsp/internal/framework"
	"xsp/internal/gpu"
	"xsp/internal/modelzoo"
	"xsp/internal/tensorflow"
	"xsp/internal/trace"
)

func extSession() *core.Session {
	return core.NewSession(tensorflow.New(), gpu.TeslaV100)
}

func extResnetGraph(t *testing.T, batch int) *framework.Graph {
	t.Helper()
	m, ok := modelzoo.ByName("MLPerf_ResNet50_v1.5")
	if !ok {
		t.Fatal("zoo missing ResNet50")
	}
	g, err := m.Graph(batch)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// End-to-end distributed-tracing flow: profile a model, publish the spans
// to a remote tracing server over HTTP (as out-of-process tracers would),
// fetch the aggregated trace back, and run the analysis pipeline on it.
// This exercises the full wire path: span -> JSON -> server -> JSON ->
// analysis.
func TestEndToEndHTTPTracing(t *testing.T) {
	srv := trace.NewServer()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Profile locally.
	s := extSession()
	res, err := s.Profile(extResnetGraph(t, 16), core.Options{Levels: core.MLG, GPUMetrics: cupti.StandardMetrics})
	if err != nil {
		t.Fatal(err)
	}

	// Publish every span to the remote server in batches.
	col := trace.NewHTTPCollector(ts.URL)
	col.Publish(res.Trace.Spans...)
	n, err := col.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(res.Trace.Spans) {
		t.Fatalf("published %d of %d spans", n, len(res.Trace.Spans))
	}

	// Fetch the aggregated timeline back and analyze it.
	fetched, err := trace.FetchTrace(ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(fetched.Spans) != len(res.Trace.Spans) {
		t.Fatalf("fetched %d spans, published %d", len(fetched.Spans), len(res.Trace.Spans))
	}

	rs, err := analysis.NewRunSet(gpu.TeslaV100, fetched)
	if err != nil {
		t.Fatal(err)
	}
	top := rs.TopKernelsByLatency(3)
	if len(top) != 3 {
		t.Fatal("analysis on fetched trace failed")
	}
	for _, k := range top {
		if !strings.Contains(k.Name, "scudnn") && !strings.Contains(k.Name, "cgemm") &&
			!strings.Contains(k.Name, "Eigen") && !strings.Contains(k.Name, "sgemm") {
			t.Errorf("unexpected top kernel %q after round trip", k.Name)
		}
		if k.LatencyMS <= 0 || k.LayerIndex < 0 {
			t.Errorf("kernel %q lost data over the wire: %+v", k.Name, k)
		}
	}

	// The tree view of the fetched trace preserves the hierarchy.
	tree := fetched.TreeString(2)
	for _, want := range []string{"evaluate", "model_prediction", "[launch]", "[exec]"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q", want)
		}
	}
}

// Multiple profiling runs can aggregate into one server; /api/reset
// separates evaluations.
func TestServerAccumulatesRuns(t *testing.T) {
	srv := trace.NewServer()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	s := extSession()
	for i := 0; i < 2; i++ {
		res, err := s.Profile(extResnetGraph(t, 1), core.Options{Levels: core.M})
		if err != nil {
			t.Fatal(err)
		}
		col := trace.NewHTTPCollector(ts.URL)
		col.Publish(res.Trace.Spans...)
		if _, err := col.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	fetched, err := trace.FetchTrace(ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(fetched.Spans); got != 8 { // 2 runs x 4 model-level spans
		t.Fatalf("aggregated spans = %d, want 8", got)
	}
}
