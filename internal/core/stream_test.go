package core_test

// External test package so the property tests can drive the stream
// correlator with internal/workload's arrival generator (workload imports
// core's sibling packages).

import (
	"fmt"
	"sync"
	"testing"

	"xsp/internal/core"
	"xsp/internal/trace"
	"xsp/internal/vclock"
	"xsp/internal/workload"
)

// batchParents returns the reference assignment: batch CorrelateWith on a
// clone of the accumulated spans in canonical order.
func batchParents(batches [][]*trace.Span) map[uint64]uint64 {
	ref := &trace.Trace{}
	for _, b := range batches {
		for _, s := range b {
			ref.Spans = append(ref.Spans, s.Clone())
		}
	}
	ref.SortByBegin()
	core.CorrelateWith(ref, core.StrategyAuto)
	parents := make(map[uint64]uint64, len(ref.Spans))
	for _, s := range ref.Spans {
		parents[s.ID] = s.ParentID
	}
	return parents
}

func feedAll(sc *core.StreamCorrelator, batches [][]*trace.Span) {
	for _, b := range batches {
		sc.Feed(b...)
	}
}

func assertStreamMatchesBatch(t *testing.T, sc *core.StreamCorrelator, batches [][]*trace.Span) {
	t.Helper()
	want := batchParents(batches)
	got := sc.Trace()
	if len(got.Spans) != len(want) {
		t.Fatalf("stream holds %d spans, fed %d", len(got.Spans), len(want))
	}
	for _, s := range got.Spans {
		if s.ParentID != want[s.ID] {
			t.Fatalf("span %d (%v %v [%d,%d)): stream parent %d, batch parent %d",
				s.ID, s.Level, s.Kind, s.Begin, s.End, s.ParentID, want[s.ID])
		}
	}
}

// Property: on every workload shape — nested, pipelined (window
// fallback), device-only (pending-exec fallback) — and under every
// arrival regime — in order, reordered within the window, reordered
// beyond it (stragglers) — the stream correlator's post-Flush parents are
// exactly the batch CorrelateWith assignment.
func TestStreamCorrelatorMatchesBatch(t *testing.T) {
	shapes := []struct {
		name string
		spec workload.SyntheticSpec
	}{
		{"nested", workload.SyntheticSpec{Spans: 4_000}},
		{"pipelined", workload.SyntheticSpec{Spans: 4_000, Streams: 3}},
		{"deviceonly", workload.SyntheticSpec{Spans: 4_000, DropLaunches: true}},
	}
	arrivals := []struct {
		name   string
		skew   vclock.Duration
		window vclock.Duration
	}{
		{"inorder", 0, 0},
		{"reordered-in-window", 48, 48},
		{"stragglers", 64, 8},
	}
	// The window size bound chains degraded windows mid-overlap; the
	// default and a deliberately tiny bound must both land exactly on the
	// batch assignment.
	bounds := []struct {
		name string
		max  int
	}{
		{"default-window-bound", 0},
		{"tiny-window-bound", 96},
	}
	for _, shape := range shapes {
		for _, arr := range arrivals {
			for _, bound := range bounds {
				t.Run(shape.name+"/"+arr.name+"/"+bound.name, func(t *testing.T) {
					for seed := int64(0); seed < 10; seed++ {
						spec := shape.spec
						spec.Seed = seed
						batches := workload.StreamingArrivals(workload.StreamingSpec{
							Trace: spec, BatchSize: 128, ReorderSkew: arr.skew, Seed: seed + 100,
						})
						sc := core.NewStreamCorrelator(core.StreamOptions{
							ReorderWindow: arr.window, MaxWindowSpans: bound.max,
						})
						feedAll(sc, batches)
						sc.Flush()
						assertStreamMatchesBatch(t, sc, batches)

						st := sc.Stats()
						if arr.name == "reordered-in-window" && st.Stragglers != 0 {
							t.Fatalf("seed %d: window-covered skew produced %d stragglers", seed, st.Stragglers)
						}
						if shape.name == "pipelined" && st.DegradedWindows == 0 {
							t.Fatalf("seed %d: pipelined stream never degraded a window", seed)
						}
						if shape.name == "pipelined" && bound.max == 96 && st.WindowsChained == 0 {
							t.Fatalf("seed %d: sustained overlap never chained a bounded window", seed)
						}
						if shape.name == "nested" && st.DegradedWindows != 0 {
							t.Fatalf("seed %d: nested stream degraded %d windows", seed, st.DegradedWindows)
						}
					}
				})
			}
		}
	}
}

// The straggler path must actually be exercised by an under-sized window,
// and Flush must leave the stream usable: a second round of feeding and
// flushing continues from the settled state.
func TestStreamCorrelatorStragglersAndReuse(t *testing.T) {
	batches := workload.StreamingArrivals(workload.StreamingSpec{
		Trace: workload.SyntheticSpec{Spans: 3_000, Seed: 2}, BatchSize: 64,
		ReorderSkew: 64, Seed: 7,
	})
	sc := core.NewStreamCorrelator(core.StreamOptions{ReorderWindow: 4})
	feedAll(sc, batches)
	sc.Flush()
	if st := sc.Stats(); st.Stragglers == 0 {
		t.Fatal("under-sized reorder window produced no stragglers")
	}
	assertStreamMatchesBatch(t, sc, batches)

	// Continue the stream past the flush: a later layer with kernels,
	// arriving in order, must still resolve online against the rebuilt
	// ancestor stacks.
	base := sc.Trace()
	model := base.Spans[0]
	var end vclock.Time
	for _, s := range base.Spans {
		if s.End > end {
			end = s.End
		}
	}
	layer := &trace.Span{ID: 900001, Level: trace.LevelLayer, Name: "late-layer", Begin: end + 1, End: end + 50}
	exec := &trace.Span{ID: 900002, Level: trace.LevelKernel, Kind: trace.KindExec, Name: "k",
		Begin: end + 2, End: end + 10, CorrelationID: 900100}
	model.End = end + 100 // keep the model span enclosing; fed spans are shared
	sc.Feed(layer, exec)
	sc.Flush()
	if layer.ParentID != model.ID {
		t.Fatalf("post-flush layer parent = %d, want model %d", layer.ParentID, model.ID)
	}
	if exec.ParentID != layer.ID {
		t.Fatalf("post-flush exec parent = %d, want layer %d", exec.ParentID, layer.ID)
	}
}

// In-order nested streams resolve launch and synchronous spans the moment
// they arrive, and execution spans the moment their launch resolves — no
// Flush needed for any of them.
func TestStreamCorrelatorResolvesOnline(t *testing.T) {
	batches := workload.StreamingArrivals(workload.StreamingSpec{
		Trace: workload.SyntheticSpec{Spans: 2_000, Seed: 4},
	})
	sc := core.NewStreamCorrelator(core.StreamOptions{})
	feedAll(sc, batches)

	st := sc.Stats()
	if st.Buffered != 0 || st.PendingExecs != 0 || st.Stragglers != 0 {
		t.Fatalf("in-order nested stream left work behind: %+v", st)
	}
	for _, s := range sc.Trace().Spans {
		if s.Level != trace.LevelModel && s.ParentID == 0 {
			t.Fatalf("span %d (%v %v) unresolved before Flush", s.ID, s.Level, s.Kind)
		}
	}
}

// Device-only execution records (no launch span ever arrives) wait in the
// pending table and take the containment fallback at Flush, exactly like
// the batch second pass.
func TestStreamCorrelatorDeviceOnlyPendsUntilFlush(t *testing.T) {
	batches := workload.StreamingArrivals(workload.StreamingSpec{
		Trace: workload.SyntheticSpec{Spans: 1_000, DropLaunches: true, Seed: 6},
	})
	sc := core.NewStreamCorrelator(core.StreamOptions{})
	feedAll(sc, batches)
	if st := sc.Stats(); st.PendingExecs == 0 {
		t.Fatal("device-only stream pended no execs")
	}
	sc.Flush()
	if st := sc.Stats(); st.PendingExecs != 0 {
		t.Fatalf("Flush left %d execs pending", st.PendingExecs)
	}
	assertStreamMatchesBatch(t, sc, batches)
}

// Parents recorded by the tracers themselves are never overwritten, and a
// launch that arrives pre-parented contributes nothing to the correlation
// table — its exec falls back to containment, as in batch.
func TestStreamCorrelatorPreservesExplicitParents(t *testing.T) {
	spans := []*trace.Span{
		{ID: 1, Level: trace.LevelModel, Begin: 0, End: 100},
		{ID: 2, ParentID: 77, Level: trace.LevelLayer, Begin: 10, End: 50},
		{ID: 3, ParentID: 66, Level: trace.LevelKernel, Kind: trace.KindLaunch, Begin: 12, End: 14, CorrelationID: 5},
		{ID: 4, Level: trace.LevelKernel, Kind: trace.KindExec, Begin: 14, End: 20, CorrelationID: 5},
	}
	sc := core.NewStreamCorrelator(core.StreamOptions{})
	sc.Feed(spans...)
	sc.Flush()
	if spans[1].ParentID != 77 || spans[2].ParentID != 66 {
		t.Fatalf("explicit parents overwritten: %d, %d", spans[1].ParentID, spans[2].ParentID)
	}
	// Exec: its launch was pre-parented (not in the table), so containment
	// finds the layer — matching CorrelateWith.
	if spans[3].ParentID != 2 {
		t.Fatalf("exec parent = %d, want containment layer 2", spans[3].ParentID)
	}
}

// The pinned pipelined-exec semantics of the batch paths hold online too:
// an exec crossing its layer's end inherits through the correlation id
// the moment its launch resolves, not by containment.
func TestStreamCorrelatorResolvesPipelinedExecViaCorrelation(t *testing.T) {
	sc := core.NewStreamCorrelator(core.StreamOptions{})
	sc.Feed(
		&trace.Span{ID: 1, Level: trace.LevelModel, Begin: 0, End: 200},
		&trace.Span{ID: 2, Level: trace.LevelLayer, Begin: 10, End: 50},
		&trace.Span{ID: 4, Level: trace.LevelKernel, Kind: trace.KindLaunch, Name: "cudaLaunchKernel", Begin: 12, End: 14, CorrelationID: 9},
		&trace.Span{ID: 5, Level: trace.LevelKernel, Kind: trace.KindExec, Name: "kernel", Begin: 40, End: 70, CorrelationID: 9},
		&trace.Span{ID: 3, Level: trace.LevelLayer, Begin: 50, End: 90},
	)
	tr := sc.Trace()
	if got := tr.ByID(4).ParentID; got != 2 {
		t.Fatalf("launch parent = %d, want layer 2", got)
	}
	if got := tr.ByID(5).ParentID; got != 2 {
		t.Fatalf("exec crossing layers must inherit launch parent 2 online, got %d", got)
	}
}

// Reset returns the correlator to empty: stats restart, and a fresh run
// fed afterwards resolves against a clean timeline rather than the
// previous run's ancestors.
func TestStreamCorrelatorReset(t *testing.T) {
	batches := workload.StreamingArrivals(workload.StreamingSpec{
		Trace: workload.SyntheticSpec{Spans: 1_000, Streams: 2, Seed: 8},
	})
	sc := core.NewStreamCorrelator(core.StreamOptions{})
	feedAll(sc, batches)
	sc.Flush()
	sc.Reset()
	if st := sc.Stats(); st != (core.StreamStats{}) {
		t.Fatalf("Stats after Reset = %+v, want zero", st)
	}
	if got := len(sc.Trace().Spans); got != 0 {
		t.Fatalf("Reset left %d spans", got)
	}

	// A second, independent run: its virtual clock restarts at zero, so any
	// surviving pre-Reset state would misclassify these spans as
	// stragglers or parent them into the previous run.
	again := workload.StreamingArrivals(workload.StreamingSpec{
		Trace: workload.SyntheticSpec{Spans: 1_000, Seed: 9},
	})
	feedAll(sc, again)
	sc.Flush()
	if st := sc.Stats(); st.Stragglers != 0 {
		t.Fatalf("post-Reset run saw %d stragglers", st.Stragglers)
	}
	assertStreamMatchesBatch(t, sc, again)
}

// The tentpole regression: under sustained pipelined overlap the degraded
// window used to stay open for the whole stream, so the fold horizon
// stalled at its start and nothing checkpointed until Flush. With the size
// bound, windows chain and finalized history folds while the overlap is
// still running — and the result is still exactly the batch assignment.
func TestStreamCorrelatorChainedWindowsAdvanceFoldHorizon(t *testing.T) {
	batches := workload.StreamingArrivals(workload.StreamingSpec{
		Trace: workload.SyntheticSpec{Spans: 20_000, Streams: 3, Seed: 5}, BatchSize: 256,
	})
	sc := core.NewStreamCorrelator(core.StreamOptions{Retain: 512, MaxWindowSpans: 512})
	feedAll(sc, batches)

	st := sc.Stats()
	if st.WindowsChained == 0 {
		t.Fatal("sustained pipelined overlap never hit the window size bound")
	}
	if st.DegradedWindows <= 1 {
		t.Fatalf("chained stream opened %d windows, want several", st.DegradedWindows)
	}
	// Before Flush: the horizon must have advanced through the chained
	// windows — the unbounded-window design checkpointed exactly 0 here.
	if st.Checkpointed == 0 {
		t.Fatal("fold horizon stalled: nothing checkpointed before Flush under sustained overlap")
	}
	if st.Live >= st.Fed/2 {
		t.Fatalf("live state %d of %d fed — fold horizon not keeping up", st.Live, st.Fed)
	}

	sc.Flush()
	assertStreamMatchesBatch(t, sc, batches)
}

// Geometric compaction must keep the segment count logarithmic in the
// checkpointed span count while folding continuously, and the merge
// schedule must leave the trace identical to an uncheckpointed stream
// (the checkpoint oracle test covers equality; this one pins the bounds).
func TestStreamCorrelatorGeometricCompactionBoundsSegments(t *testing.T) {
	batches := workload.StreamingArrivals(workload.StreamingSpec{
		Trace: workload.SyntheticSpec{Spans: 30_000, Seed: 11}, BatchSize: 128,
	})
	sc := core.NewStreamCorrelator(core.StreamOptions{Retain: 256})
	maxSegments := 0
	for _, b := range batches {
		sc.Feed(b...)
		if st := sc.Stats(); st.Segments > maxSegments {
			maxSegments = st.Segments
		}
	}
	st := sc.Stats()
	if st.Checkpointed == 0 {
		t.Fatal("stream never folded")
	}
	if st.Compactions == 0 {
		t.Fatal("continuous folding never triggered a compaction")
	}
	// The doubling invariant admits at most ~log2(checkpointed/foldSize)
	// segments plus the in-flight fold; 16 is generous headroom for 30k
	// spans folded ~1k at a time.
	if maxSegments > 16 {
		t.Fatalf("segment count reached %d — geometric schedule not holding", maxSegments)
	}
	sc.Flush()
	assertStreamMatchesBatch(t, sc, batches)
}

// The CorrRetain horizon, table-tested: an execution span arriving inside
// the horizon still resolves through its launch's correlation id; one
// arriving beyond it finds the entry evicted and falls back to containment
// — the documented trade for a correlation table that stops growing with
// total launches.
func TestStreamCorrelatorCorrRetentionHorizon(t *testing.T) {
	const retain = vclock.Duration(1_000)
	cases := []struct {
		name       string
		execBegin  vclock.Time
		wantParent uint64 // 2 = launch's layer (via corr), 4 = containing layer
		wantEvict  bool
	}{
		// Exec arrives while the launch's entry is within the horizon:
		// correlation id wins even though the exec sits inside layer 4.
		{"inside-horizon", 450, 2, false},
		// Exec arrives far beyond the horizon: the entry is gone, and the
		// documented fallback parents it into the layer that contains it.
		{"beyond-horizon", 9_500, 4, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := core.NewStreamCorrelator(core.StreamOptions{CorrRetain: retain})
			sc.Feed(
				&trace.Span{ID: 1, Level: trace.LevelModel, Begin: 0, End: 20_000},
				&trace.Span{ID: 2, Level: trace.LevelLayer, Name: "launch-layer", Begin: 5, End: 100},
				&trace.Span{ID: 3, Level: trace.LevelKernel, Kind: trace.KindLaunch, Name: "cudaLaunchKernel",
					Begin: 10, End: 12, CorrelationID: 7},
			)
			// Filler layers advance the watermark (and with it the
			// amortized eviction sweep) up to the exec's arrival point.
			for begin := vclock.Time(200); begin+200 < tc.execBegin; begin += 200 {
				sc.Feed(&trace.Span{ID: uint64(100 + begin), Level: trace.LevelLayer, Name: "filler",
					Begin: begin, End: begin + 150})
			}
			// The layer the exec physically sits in.
			sc.Feed(&trace.Span{ID: 4, Level: trace.LevelLayer, Name: "exec-layer",
				Begin: tc.execBegin - 10, End: tc.execBegin + 100})
			exec := &trace.Span{ID: 5, Level: trace.LevelKernel, Kind: trace.KindExec, Name: "kernel",
				Begin: tc.execBegin, End: tc.execBegin + 20, CorrelationID: 7}
			sc.Feed(exec)
			sc.Flush()

			if exec.ParentID != tc.wantParent {
				t.Fatalf("exec parent = %d, want %d", exec.ParentID, tc.wantParent)
			}
			st := sc.Stats()
			if tc.wantEvict && st.CorrEvicted == 0 {
				t.Fatal("horizon passed the launch but nothing was evicted")
			}
			if !tc.wantEvict && exec.ParentID != 2 {
				t.Fatalf("in-horizon exec lost its correlation: parent %d", exec.ParentID)
			}
			if st.CorrEntries > 1 {
				t.Fatalf("correlation table holds %d entries after the horizon swept, want <= 1", st.CorrEntries)
			}
		})
	}
}

// A straggler repair overlapping a timely, correlation-resolved exec must
// not degrade it to containment just because CorrRetain evicted its
// launch's table entry in the meantime: the launch (outside the repair
// region) did not move, so the settled link is restored — matching what
// batch correlation assigns.
func TestStreamCorrelatorRepairKeepsSettledExecAfterCorrEviction(t *testing.T) {
	sc := core.NewStreamCorrelator(core.StreamOptions{CorrRetain: 1_000})
	sc.Feed(
		&trace.Span{ID: 1, Level: trace.LevelModel, Begin: 0, End: 100_000},
		&trace.Span{ID: 2, Level: trace.LevelLayer, Name: "launch-layer", Begin: 5, End: 100},
		&trace.Span{ID: 3, Level: trace.LevelKernel, Kind: trace.KindLaunch, Name: "cudaLaunchKernel",
			Begin: 10, End: 12, CorrelationID: 7},
	)
	sc.Feed(&trace.Span{ID: 4, Level: trace.LevelLayer, Name: "exec-layer", Begin: 440, End: 560})
	exec := &trace.Span{ID: 5, Level: trace.LevelKernel, Kind: trace.KindExec, Name: "kernel",
		Begin: 450, End: 470, CorrelationID: 7}
	sc.Feed(exec)
	if exec.ParentID != 2 {
		t.Fatalf("timely exec resolved to %d, want launch parent 2", exec.ParentID)
	}
	// Advance the watermark far enough that the eviction sweep drops the
	// launch's entry.
	for begin := vclock.Time(600); begin < 10_000; begin += 200 {
		sc.Feed(&trace.Span{ID: uint64(100 + begin), Level: trace.LevelLayer, Name: "filler",
			Begin: begin, End: begin + 150})
	}
	if st := sc.Stats(); st.CorrEvicted == 0 {
		t.Fatal("launch entry not evicted — test not exercising the eviction path")
	}
	// A straggler layer tighter than exec-layer lands over the exec's
	// window: the repair resets and re-resolves the region.
	sc.Feed(&trace.Span{ID: 6, Level: trace.LevelLayer, Name: "straggler-layer", Begin: 448, End: 476})
	sc.Flush()
	if st := sc.Stats(); st.Repaired == 0 {
		t.Fatal("straggler did not trigger a repair")
	}
	if exec.ParentID != 2 {
		t.Fatalf("repair degraded the settled exec to parent %d, want launch parent 2", exec.ParentID)
	}
}

// With CorrRetain set, device-only execution records no longer stall the
// fold horizon: pending execs past the horizon finalize by containment and
// the stream checkpoints while feeding — previously a device-only stream
// folded nothing until Flush.
func TestStreamCorrelatorCorrRetainUnstallsDeviceOnlyFolds(t *testing.T) {
	batches := workload.StreamingArrivals(workload.StreamingSpec{
		Trace: workload.SyntheticSpec{Spans: 20_000, DropLaunches: true, Seed: 14}, BatchSize: 256,
	})
	sc := core.NewStreamCorrelator(core.StreamOptions{Retain: 512, CorrRetain: 512})
	feedAll(sc, batches)
	st := sc.Stats()
	if st.Checkpointed == 0 {
		t.Fatal("device-only stream with CorrRetain still stalls the fold horizon")
	}
	if st.PendingExecs >= st.Fed/4 {
		t.Fatalf("pending-exec table holds %d of %d fed — not bounded by the horizon", st.PendingExecs, st.Fed)
	}
	sc.Flush()
	// Device-only execs resolve by containment in batch too, so the
	// horizon-finalized parents agree with the batch assignment here.
	assertStreamMatchesBatch(t, sc, batches)
}

// cloneBatches deep-copies an arrival stream so two correlators can
// consume the same workload without racing on shared span pointers.
func cloneBatches(batches [][]*trace.Span) [][]*trace.Span {
	out := make([][]*trace.Span, len(batches))
	for i, b := range batches {
		out[i] = make([]*trace.Span, len(b))
		for j, s := range b {
			out[i][j] = s.Clone()
		}
	}
	return out
}

// Straggler repair must be bounded: withholding one fixed-width window of
// spans and delivering it last repairs roughly the window's population,
// not the whole stream — and still lands exactly on the batch assignment.
func TestStreamCorrelatorStragglerRepairIsBounded(t *testing.T) {
	shapes := []struct {
		name string
		spec workload.SyntheticSpec
	}{
		{"nested", workload.SyntheticSpec{Spans: 20_000}},
		{"pipelined", workload.SyntheticSpec{Spans: 20_000, Streams: 3}},
		{"deviceonly", workload.SyntheticSpec{Spans: 20_000, DropLaunches: true}},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				spec := shape.spec
				spec.Seed = seed
				batches := workload.StreamingArrivals(workload.StreamingSpec{
					Trace: spec, BatchSize: 512, StragglerWindow: 2_048, Seed: seed + 50,
				})
				sc := core.NewStreamCorrelator(core.StreamOptions{})
				feedAll(sc, batches)
				sc.Flush()
				st := sc.Stats()
				if st.Stragglers == 0 {
					t.Fatalf("seed %d: straggler window delivered no stragglers", seed)
				}
				if st.Repaired == 0 {
					t.Fatalf("seed %d: stragglers arrived but nothing was repaired", seed)
				}
				if st.Repaired > st.Fed/4 {
					t.Fatalf("seed %d: repair touched %d of %d spans — not bounded by the window",
						seed, st.Repaired, st.Fed)
				}
				assertStreamMatchesBatch(t, sc, batches)
			}
		})
	}
}

// Oracle for the checkpoint path: on the same feed, a correlator that
// folds finalized history into checkpoint segments must produce exactly
// the Trace of one that never checkpoints — same spans, same order, same
// parents — on every shape, in order and under reordered arrivals.
func TestStreamCorrelatorCheckpointOracle(t *testing.T) {
	shapes := []struct {
		name string
		spec workload.SyntheticSpec
	}{
		{"nested", workload.SyntheticSpec{Spans: 6_000}},
		{"pipelined", workload.SyntheticSpec{Spans: 6_000, Streams: 3}},
		{"deviceonly", workload.SyntheticSpec{Spans: 6_000, DropLaunches: true}},
	}
	arrivals := []struct {
		name string
		skew vclock.Duration
	}{
		{"inorder", 0},
		{"reordered", 48},
	}
	for _, shape := range shapes {
		for _, arr := range arrivals {
			t.Run(shape.name+"/"+arr.name, func(t *testing.T) {
				for seed := int64(0); seed < 3; seed++ {
					spec := shape.spec
					spec.Seed = seed
					batches := workload.StreamingArrivals(workload.StreamingSpec{
						Trace: spec, BatchSize: 256, ReorderSkew: arr.skew, Seed: seed + 30,
					})
					generated := 0
					for _, b := range batches {
						generated += len(b)
					}
					plain := core.NewStreamCorrelator(core.StreamOptions{ReorderWindow: arr.skew})
					ck := core.NewStreamCorrelator(core.StreamOptions{ReorderWindow: arr.skew, Retain: 64})
					ckBatches := cloneBatches(batches)
					for i := range batches {
						plain.Feed(batches[i]...)
						ck.Feed(ckBatches[i]...)
						if i%4 == 3 {
							ck.Checkpoint()
						}
					}
					plain.Flush()
					ck.Flush()
					// Device-only streams hold the fold horizon at their
					// oldest pending exec and sustained pipelined overlap
					// holds it at the open window — Flush settles both, so
					// the post-Flush fold must retire nearly everything.
					ck.Checkpoint()

					st := ck.Stats()
					if st.Checkpointed == 0 {
						t.Fatalf("seed %d: checkpoint never folded", seed)
					}
					// Conservation against the independently-known input
					// size: Fed is derived as Live+Checkpointed, so the
					// assertion must anchor on the generated count or a
					// span-dropping fold would pass unnoticed.
					if st.Live+st.Checkpointed != generated {
						t.Fatalf("seed %d: live %d + checkpointed %d != generated %d",
							seed, st.Live, st.Checkpointed, generated)
					}
					if st.Live >= st.Fed/2 {
						t.Fatalf("seed %d: checkpointing left %d of %d spans live", seed, st.Live, st.Fed)
					}

					want := plain.Trace()
					got := ck.Trace()
					if len(got.Spans) != len(want.Spans) {
						t.Fatalf("seed %d: checkpointed trace has %d spans, plain %d",
							seed, len(got.Spans), len(want.Spans))
					}
					for i := range want.Spans {
						w, g := want.Spans[i], got.Spans[i]
						if w.ID != g.ID || w.ParentID != g.ParentID {
							t.Fatalf("seed %d: span %d: checkpointed (id %d parent %d) != plain (id %d parent %d)",
								seed, i, g.ID, g.ParentID, w.ID, w.ParentID)
						}
					}
					assertStreamMatchesBatch(t, ck, ckBatches)
				}
			})
		}
	}
}

// A straggler whose repair window reaches behind the checkpoint horizon
// must reopen the checkpoint and still land exactly on the batch
// assignment.
func TestStreamCorrelatorStragglerReopensCheckpoint(t *testing.T) {
	batches := workload.StreamingArrivals(workload.StreamingSpec{
		Trace: workload.SyntheticSpec{Spans: 12_000, Seed: 3}, BatchSize: 256,
		StragglerWindow: 1_024, Seed: 21,
	})
	sc := core.NewStreamCorrelator(core.StreamOptions{Retain: 64})
	// Feed everything but the withheld final batch, then fold the history
	// — including the stragglers' window — into the checkpoint.
	for _, b := range batches[:len(batches)-1] {
		sc.Feed(b...)
	}
	if sc.Checkpoint() == 0 {
		t.Fatal("checkpoint folded nothing before the stragglers arrived")
	}
	sc.Feed(batches[len(batches)-1]...)
	sc.Flush()

	st := sc.Stats()
	if st.Stragglers == 0 {
		t.Fatal("withheld batch produced no stragglers")
	}
	if st.Reopens == 0 {
		t.Fatal("deep straggler repair did not reopen the checkpoint")
	}
	assertStreamMatchesBatch(t, sc, batches)
}

// Reset returns a checkpointing correlator to empty — segments included —
// and the reused stream checkpoints and correlates a fresh run correctly.
func TestStreamCorrelatorCheckpointResetReuse(t *testing.T) {
	first := workload.StreamingArrivals(workload.StreamingSpec{
		Trace: workload.SyntheticSpec{Spans: 4_000, Seed: 12}, BatchSize: 256,
	})
	sc := core.NewStreamCorrelator(core.StreamOptions{Retain: 64})
	feedAll(sc, first)
	if sc.Checkpoint() == 0 {
		t.Fatal("first run never checkpointed")
	}
	sc.Flush()
	sc.Reset()
	if st := sc.Stats(); st != (core.StreamStats{}) {
		t.Fatalf("Stats after Reset = %+v, want zero", st)
	}
	if got := len(sc.Trace().Spans); got != 0 {
		t.Fatalf("Reset left %d spans (checkpoint segments survived?)", got)
	}

	// A fresh run on the reused correlator: its clock restarts at zero, so
	// surviving checkpoint state would misclassify everything.
	again := workload.StreamingArrivals(workload.StreamingSpec{
		Trace: workload.SyntheticSpec{Spans: 4_000, Seed: 13}, BatchSize: 256,
	})
	feedAll(sc, again)
	sc.Flush()
	if sc.Checkpoint() == 0 {
		t.Fatal("reused correlator never checkpointed")
	}
	if st := sc.Stats(); st.Stragglers != 0 {
		t.Fatalf("post-Reset run saw %d stragglers", st.Stragglers)
	}
	assertStreamMatchesBatch(t, sc, again)
}

// The Memory-level tap under load: concurrent tracers publish through
// dedicated shards into a tapped Memory while Checkpoint, Stats, and
// snapshot readers run — the -race exercise for the Publish/tap/Checkpoint
// surface. The tap must see every span exactly once, shard Close moves
// included.
func TestMemoryTapStreamCheckpointConcurrently(t *testing.T) {
	const publishers = 4
	const perPublisher = 500

	mem := trace.NewMemory()
	sc := core.NewStreamCorrelator(core.StreamOptions{
		Isolated:      true, // publishers keep their spans; correlate copies
		ReorderWindow: 512,
		Retain:        512,
	})
	mem.SetTap(sc)

	var wg sync.WaitGroup
	for w := 0; w < publishers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := trace.NewTracer(fmt.Sprintf("pub-%d", w), trace.LevelLayer, mem)
			defer tr.Close()
			base := vclock.Time(w * 11)
			for i := 0; i < perPublisher; i++ {
				sp := tr.StartSpan("work", base)
				tr.FinishSpan(sp, base+5)
				base += 7
			}
		}(w)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			sc.Checkpoint()
			sc.Stats()
			sc.SnapshotTrace()
			mem.Trace()
		}
	}()
	wg.Wait()
	<-done
	sc.Flush()

	if got := mem.Len(); got != publishers*perPublisher {
		t.Fatalf("collector holds %d spans, want %d", got, publishers*perPublisher)
	}
	st := sc.Stats()
	if st.Fed != publishers*perPublisher {
		t.Fatalf("tap fed the correlator %d spans, want %d (lost or double-tapped)",
			st.Fed, publishers*perPublisher)
	}
	if got := len(sc.Trace().Spans); got != publishers*perPublisher {
		t.Fatalf("correlator trace has %d spans, want %d", got, publishers*perPublisher)
	}
}

// Isolated mode clones: the fed spans stay untouched, the correlated
// copies live inside the correlator.
func TestStreamCorrelatorIsolated(t *testing.T) {
	orig := []*trace.Span{
		{ID: 1, Level: trace.LevelModel, Begin: 0, End: 100},
		{ID: 2, Level: trace.LevelLayer, Begin: 10, End: 50},
	}
	sc := core.NewStreamCorrelator(core.StreamOptions{Isolated: true})
	sc.Feed(orig...)
	sc.Flush()
	if orig[1].ParentID != 0 {
		t.Fatal("isolated correlator wrote through to the fed span")
	}
	if got := sc.Trace().ByID(2).ParentID; got != 1 {
		t.Fatalf("isolated copy not correlated: parent = %d", got)
	}
}

func ExampleStreamCorrelator() {
	sc := core.NewStreamCorrelator(core.StreamOptions{})
	sc.Feed(
		&trace.Span{ID: 1, Level: trace.LevelModel, Name: "model_prediction", Begin: 0, End: 100},
		&trace.Span{ID: 2, Level: trace.LevelLayer, Name: "conv1", Begin: 10, End: 40},
	)
	sc.Feed(
		&trace.Span{ID: 3, Level: trace.LevelKernel, Kind: trace.KindLaunch, Name: "cudaLaunchKernel", Begin: 12, End: 14, CorrelationID: 1},
		&trace.Span{ID: 4, Level: trace.LevelKernel, Kind: trace.KindExec, Name: "gemm", Begin: 14, End: 30, CorrelationID: 1},
	)
	sc.Flush()
	tr := sc.Trace()
	fmt.Println("conv1 parent:", tr.Find("conv1").ParentID)
	fmt.Println("gemm parent:", tr.Find("gemm").ParentID)
	// Output:
	// conv1 parent: 1
	// gemm parent: 2
}
