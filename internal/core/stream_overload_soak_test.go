package core_test

import (
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xsp/internal/core"
	"xsp/internal/trace"
	"xsp/internal/workload"
)

// retryUntilShipped is the soak publishers' delivery loop: publish the
// batch and flush until the server accepts it, pacing on ErrBackoff / 429
// like a production client. Past the deadline it aborts (recording the
// failure) instead of hanging the suite on a livelock.
func retryUntilShipped(t *testing.T, col *trace.HTTPCollector, aborted *atomic.Bool, deadline time.Time, batch []*trace.Span) {
	col.Publish(batch...)
	for {
		if _, err := col.Flush(); err == nil {
			return
		}
		if time.Now().After(deadline) {
			if aborted.CompareAndSwap(false, true) {
				t.Errorf("publisher wedged: batch not accepted by %v — overload never recovered", deadline)
			}
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// The adversarial soak: 10x overdriven publishers against a small
// admission budget, ShedBlock tap, and the stream correlator's pressure
// driving the shedding. Asserts the tentpole's three properties: (a) every
// live structure stays bounded by its configured limit, (b) the final
// correlated trace equals the batch oracle over all accepted spans — no
// corruption, no double-count via retried batches — and (c) the system
// recovers to normal behavior after the burst.
func TestOverloadSoakBlockPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test: skipped in -short")
	}
	total := soakSpans(t) / 10
	const (
		publishers = 10
		batchSpans = 64
		tapQueue   = 256
		spanBudget = 512  // server in-flight span budget
		pressure   = 2048 // correlator live-span budget
	)

	sc := core.NewStreamCorrelator(core.StreamOptions{
		Isolated:      true,
		ReorderWindow: 512,
		Retain:        1024,
		PressureSpans: pressure,
	})
	srv := trace.NewServer()
	srv.SetAdmission(trace.AdmissionPolicy{
		MaxInflightBytes: 8 << 20,
		MaxInflightSpans: spanBudget,
		RetryAfter:       time.Millisecond,
	})
	srv.SetLoad(sc)
	// The consumer is throttled (as a real correlator under CPU contention
	// would be), so the overdrive genuinely outruns it and admission has to
	// shed; ShedBlock means no span is ever dropped on the way in.
	tap := srv.SetTapAsync(&slowCollector{dst: sc, delay: time.Millisecond},
		trace.TapOptions{Queue: tapQueue, Policy: trace.ShedBlock})
	defer tap.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// The monitor is the periodic snapshot reader a server runs: its Flush
	// repairs stragglers (batches delayed by retry backoff land behind the
	// sweep) and its Checkpoint folds finalized history, which is what lets
	// live state recover while admission is shedding. It also samples every
	// bound the soak asserts.
	var mu sync.Mutex
	var maxLive, maxBuffered, maxPending, maxWindow int
	sample := func() {
		l := sc.Load()
		mu.Lock()
		maxLive = max(maxLive, l.LiveSpans)
		maxBuffered = max(maxBuffered, l.Buffered)
		maxPending = max(maxPending, l.PendingExecs)
		maxWindow = max(maxWindow, l.WindowSpans)
		mu.Unlock()
	}
	stop := make(chan struct{})
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
				sc.Flush()
				sc.Checkpoint()
				sample()
			}
		}
	}()

	cols := make([]*trace.HTTPCollector, publishers)
	for p := range cols {
		cols[p] = trace.NewHTTPCollector(ts.URL)
		cols[p].SetRetryPolicy(trace.RetryPolicy{
			BaseDelay: 200 * time.Microsecond,
			MaxDelay:  5 * time.Millisecond,
			// MaxAttempts zero: never drop — exactly-once over every span.
		})
	}
	var aborted atomic.Bool
	deadline := time.Now().Add(2 * time.Minute)
	generated := workload.PublishOverdriven(workload.OverloadSpec{
		Publishers: publishers,
		SpansEach:  total / publishers,
		BatchSpans: batchSpans,
		Seed:       42,
	}, func(p int, batch []*trace.Span) {
		if aborted.Load() {
			return
		}
		retryUntilShipped(t, cols[p], &aborted, deadline, batch)
		sample()
	})
	close(stop)
	monWG.Wait()
	if aborted.Load() {
		t.Fatal("soak aborted on a wedged publisher")
	}

	// (a) Every structure held its configured bound. The live-span ceiling
	// is the admission pipeline's worst case: the pressure budget plus one
	// crossing batch, plus everything already admitted (span budget) or
	// queued (tap bound) when the pressure trip was detected.
	liveBound := pressure + batchSpans + spanBudget + tapQueue
	if maxLive > liveBound {
		t.Fatalf("live spans peaked at %d, admission ceiling is %d", maxLive, liveBound)
	}
	if st := tap.Stats(); st.MaxDepth > tapQueue {
		t.Fatalf("tap queue peaked at %d, bound is %d", st.MaxDepth, tapQueue)
	}
	if maxBuffered > liveBound || maxPending > liveBound {
		t.Fatalf("reorder buffer peaked at %d, pending execs at %d — past the live ceiling %d",
			maxBuffered, maxPending, liveBound)
	}
	if maxWindow > 4096 {
		t.Fatalf("degraded window peaked at %d candidates, bound is 4096", maxWindow)
	}
	ost := srv.OverloadStats()
	if ost.ShedRequests == 0 {
		t.Fatal("overdriven run never shed a request — the soak is not overloading")
	}
	if st := tap.Stats(); st.Dropped != 0 {
		t.Fatalf("ShedBlock tap dropped %d spans", st.Dropped)
	}

	// Drain: the tap barrier, then the final Flush.
	tap.Flush()
	sc.Flush()

	// (b) Exactly-once and stream-vs-batch equality over accepted spans.
	// With ShedBlock and retry-forever publishers, accepted means all.
	if got := srv.Received(); got != generated {
		t.Fatalf("server accepted %d spans, generated %d — retried batches double-counted or lost", got, generated)
	}
	accepted := srv.Trace()
	if len(accepted.Spans) != generated {
		t.Fatalf("store holds %d spans, want %d", len(accepted.Spans), generated)
	}
	seen := make(map[uint64]bool, generated)
	for _, s := range accepted.Spans {
		if seen[s.ID] {
			t.Fatalf("span %d stored twice — a retried batch re-published", s.ID)
		}
		seen[s.ID] = true
	}
	assertStreamMatchesBatch(t, sc, [][]*trace.Span{accepted.Spans})

	// (c) Recovery: with the burst over and history folded, pressure is
	// back to nominal and a fresh publisher is admitted first try.
	sc.Checkpoint()
	if got := sc.Pressure(); got != trace.PressureNominal {
		t.Fatalf("post-burst pressure %v (%d live), want nominal", got, sc.Load().LiveSpans)
	}
	if ost := srv.OverloadStats(); ost.InflightBytes != 0 || ost.InflightSpans != 0 || ost.TapDepth != 0 {
		t.Fatalf("post-burst in-flight state not drained: %+v", ost)
	}
	probe := trace.NewHTTPCollector(ts.URL)
	probe.Publish(&trace.Span{ID: trace.NewSpanID(), Level: trace.LevelKernel, Name: "probe", Begin: 1 << 40, End: 1<<40 + 1})
	start := time.Now()
	if n, err := probe.Flush(); err != nil || n != 1 {
		t.Fatalf("post-burst probe = %d, %v — not admitted first try", n, err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("post-burst probe took %v — latency did not recover", d)
	}
}

// slowCollector throttles the tap's consumer, so the drop/degrade soaks
// reliably overflow the queue.
type slowCollector struct {
	dst   trace.Collector
	delay time.Duration
}

func (c *slowCollector) Publish(spans ...*trace.Span) {
	time.Sleep(c.delay)
	c.dst.Publish(spans...)
}

// The shedding policies under the same overdrive: the tap stays bounded
// and sheds by its policy, while the store keeps every accepted span
// exactly once — shed spans are not lost, they are simply absent from the
// online view until a batch re-correlate over the store (the documented
// recovery path) picks them up.
func TestOverloadSoakShedPoliciesKeepStoreExact(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test: skipped in -short")
	}
	for _, pol := range []trace.ShedPolicy{trace.ShedDropNewest, trace.ShedDegradeToBatch} {
		t.Run(pol.String(), func(t *testing.T) {
			total := soakSpans(t) / 25
			const (
				publishers = 10
				batchSpans = 32
				tapQueue   = 128
			)
			sc := core.NewStreamCorrelator(core.StreamOptions{Isolated: true, ReorderWindow: 512})
			srv := trace.NewServer()
			srv.SetAdmission(trace.AdmissionPolicy{
				MaxInflightSpans: 512,
				RetryAfter:       time.Millisecond,
			})
			tap := srv.SetTapAsync(&slowCollector{dst: sc, delay: 200 * time.Microsecond},
				trace.TapOptions{Queue: tapQueue, Policy: pol})
			defer tap.Close()
			ts := httptest.NewServer(srv)
			defer ts.Close()

			cols := make([]*trace.HTTPCollector, publishers)
			for p := range cols {
				cols[p] = trace.NewHTTPCollector(ts.URL)
				cols[p].SetRetryPolicy(trace.RetryPolicy{BaseDelay: 200 * time.Microsecond, MaxDelay: 5 * time.Millisecond})
			}
			var aborted atomic.Bool
			deadline := time.Now().Add(2 * time.Minute)
			generated := workload.PublishOverdriven(workload.OverloadSpec{
				Publishers: publishers,
				SpansEach:  total / publishers,
				BatchSpans: batchSpans,
				Seed:       7,
			}, func(p int, batch []*trace.Span) {
				retryUntilShipped(t, cols[p], &aborted, deadline, batch)
			})
			if aborted.Load() {
				t.Fatal("soak aborted on a wedged publisher")
			}
			tap.Flush()
			sc.Flush()

			// The store is exact regardless of tap shedding.
			if got := srv.Received(); got != generated {
				t.Fatalf("server accepted %d spans, generated %d", got, generated)
			}
			accepted := srv.Trace()
			seen := make(map[uint64]bool, generated)
			for _, s := range accepted.Spans {
				if seen[s.ID] {
					t.Fatalf("span %d stored twice", s.ID)
				}
				seen[s.ID] = true
			}
			if len(seen) != generated {
				t.Fatalf("store holds %d distinct spans, want %d", len(seen), generated)
			}

			// The tap held its bound, shed by its policy, and accounted for
			// every accepted span: enqueued + dropped, no third fate.
			st := tap.Stats()
			if st.MaxDepth > tapQueue {
				t.Fatalf("tap queue peaked at %d, bound is %d", st.MaxDepth, tapQueue)
			}
			if st.Dropped == 0 {
				t.Fatalf("%v: overdrive against a throttled consumer never shed", pol)
			}
			if pol == trace.ShedDegradeToBatch && st.Degradations == 0 {
				t.Fatal("degrade policy shed without ever degrading")
			}
			if st.Enqueued+st.Dropped != int64(generated) {
				t.Fatalf("tap accounted %d enqueued + %d dropped, want %d accepted",
					st.Enqueued, st.Dropped, generated)
			}
			if st.Forwarded != st.Enqueued {
				t.Fatalf("tap forwarded %d of %d enqueued after Flush", st.Forwarded, st.Enqueued)
			}
			if got := sc.Stats().Fed; got != int(st.Forwarded) {
				t.Fatalf("correlator fed %d spans, tap forwarded %d", got, st.Forwarded)
			}

			// Recovery: the documented repair — a batch correlate over the
			// store — sees every span, shed ones included.
			repaired := &trace.Trace{Spans: make([]*trace.Span, 0, len(accepted.Spans))}
			for _, s := range accepted.Spans {
				repaired.Spans = append(repaired.Spans, s.Clone())
			}
			repaired.SortByBegin()
			core.CorrelateWith(repaired, core.StrategyAuto)
			if len(repaired.Spans) != generated {
				t.Fatalf("re-correlate covers %d spans, want %d", len(repaired.Spans), generated)
			}
			if tap.Depth() != 0 {
				t.Fatalf("tap backlog %d after drain, want 0", tap.Depth())
			}
		})
	}
}
