package core

import (
	"time"

	"xsp/internal/framework"
	"xsp/internal/trace"
	"xsp/internal/vclock"
)

// Leveled is the result of leveled experimentation (Section III-C): the
// model profiled once per level set, so every level's latencies come from
// the run where they are accurate, and the overhead each additional level
// introduces is quantified by subtraction.
type Leveled struct {
	// MTrace, MLTrace, MLGTrace are the runs at increasing levels.
	MTrace, MLTrace, MLGTrace *trace.Trace

	// ModelLatency is the accurate model-prediction latency (M run).
	ModelLatency time.Duration

	// LayerOverhead is the overhead layer-level profiling adds to the
	// model prediction (M/L prediction latency minus M's). For
	// MLPerf_ResNet50_v1.5 at batch 256 on Tesla_V100 the paper
	// measures 157ms.
	LayerOverhead time.Duration

	// GPUOverhead is the additional overhead GPU kernel-level profiling
	// adds (M/L/G prediction latency minus M/L's).
	GPUOverhead time.Duration
}

// LeveledProfile performs the three-run leveled experiment on one graph.
// gpuMetrics optionally enables CUPTI hardware counters in the M/L/G run.
func (s *Session) LeveledProfile(g *framework.Graph, gpuMetrics []string) (*Leveled, error) {
	m, err := s.Profile(g, Options{Levels: M})
	if err != nil {
		return nil, err
	}
	ml, err := s.Profile(g, Options{Levels: ML})
	if err != nil {
		return nil, err
	}
	mlg, err := s.Profile(g, Options{Levels: MLG, GPUMetrics: gpuMetrics})
	if err != nil {
		return nil, err
	}

	lat := func(t *trace.Trace) time.Duration {
		if sp := t.Find("model_prediction"); sp != nil {
			return sp.Duration()
		}
		return 0
	}
	out := &Leveled{
		MTrace:       m.Trace,
		MLTrace:      ml.Trace,
		MLGTrace:     mlg.Trace,
		ModelLatency: lat(m.Trace),
	}
	out.LayerOverhead = lat(ml.Trace) - out.ModelLatency
	out.GPUOverhead = lat(mlg.Trace) - lat(ml.Trace)
	return out, nil
}

// PredictionLatency returns the model-prediction latency recorded in a
// trace, or 0 when absent.
func PredictionLatency(t *trace.Trace) vclock.Duration {
	if sp := t.Find("model_prediction"); sp != nil {
		return sp.Duration()
	}
	return 0
}
