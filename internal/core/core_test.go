package core

import (
	"testing"
	"time"

	"xsp/internal/cupti"
	"xsp/internal/framework"
	"xsp/internal/gpu"
	"xsp/internal/modelzoo"
	"xsp/internal/tensorflow"
	"xsp/internal/trace"
)

func resnetGraph(t *testing.T, batch int) *framework.Graph {
	t.Helper()
	m, ok := modelzoo.ByName("MLPerf_ResNet50_v1.5")
	if !ok {
		t.Fatal("zoo missing ResNet50")
	}
	g, err := m.Graph(batch)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newSession() *Session {
	return NewSession(tensorflow.New(), gpu.TeslaV100)
}

// Every subset of levels renders without a leading or trailing slash —
// sets that skip the model level used to come out as "/L/G".
func TestLevelSetString(t *testing.T) {
	names := [4]string{"M", "L", "Lib", "G"}
	for bits := 0; bits < 16; bits++ {
		ls := LevelSet{
			Model:   bits&1 != 0,
			Layer:   bits&2 != 0,
			Library: bits&4 != 0,
			GPU:     bits&8 != 0,
		}
		want := ""
		for i, on := range []bool{ls.Model, ls.Layer, ls.Library, ls.GPU} {
			if !on {
				continue
			}
			if want != "" {
				want += "/"
			}
			want += names[i]
		}
		if got := ls.String(); got != want {
			t.Errorf("LevelSet %+v = %q, want %q", ls, got, want)
		}
	}
	// The paper's notation for the common sets, pinned explicitly.
	for ls, want := range map[LevelSet]string{M: "M", ML: "M/L", MLG: "M/L/G", MG: "M/G", MLLG: "M/L/Lib/G",
		{Layer: true, GPU: true}: "L/G"} {
		if got := ls.String(); got != want {
			t.Errorf("LevelSet = %q, want %q", got, want)
		}
	}
}

func TestModelLevelProfile(t *testing.T) {
	s := newSession()
	res, err := s.Profile(resnetGraph(t, 4), Options{Levels: M})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	// Model level: evaluate root + 3 pipeline steps, nothing deeper.
	if got := len(tr.Spans); got != 4 {
		t.Fatalf("M-level spans = %d, want 4", got)
	}
	for _, name := range []string{"evaluate", "input_preprocess", "model_prediction", "output_postprocess"} {
		if tr.Find(name) == nil {
			t.Errorf("missing span %q", name)
		}
	}
	root := tr.Find("evaluate")
	if kids := tr.Children(root); len(kids) != 3 {
		t.Fatalf("root children = %d", len(kids))
	}
	if res.ModelSpan == nil || res.ModelSpan.Duration() <= 0 {
		t.Fatal("model span missing or empty")
	}
}

func TestProfileRequiresModelLevel(t *testing.T) {
	s := newSession()
	if _, err := s.Profile(resnetGraph(t, 1), Options{}); err == nil {
		t.Fatal("expected error without model level")
	}
}

func TestLayerLevelProfile(t *testing.T) {
	s := newSession()
	res, err := s.Profile(resnetGraph(t, 4), Options{Levels: ML})
	if err != nil {
		t.Fatal(err)
	}
	layers := res.Trace.ByLevel(trace.LevelLayer)
	if len(layers) < 200 {
		t.Fatalf("layer spans = %d, want ~231", len(layers))
	}
	predict := res.Trace.Find("model_prediction")
	for i, l := range layers {
		if l.ParentID != predict.ID {
			t.Fatalf("layer %d not a child of prediction", i)
		}
		if l.Tag("layer_type") == "" || l.Tag("layer_index") == "" {
			t.Fatalf("layer %d missing tags", i)
		}
		if l.Begin < predict.Begin || l.End > predict.End {
			t.Fatalf("layer %d outside prediction window", i)
		}
	}
}

func TestFullStackProfileCorrelation(t *testing.T) {
	s := newSession()
	res, err := s.Profile(resnetGraph(t, 4), Options{Levels: MLG})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace

	var launches, execs []*trace.Span
	for _, sp := range tr.Spans {
		switch {
		case sp.Kind == trace.KindLaunch:
			launches = append(launches, sp)
		case sp.Kind == trace.KindExec && sp.Level == trace.LevelKernel:
			execs = append(execs, sp)
		}
	}
	if len(launches) < 100 || len(execs) < 100 {
		t.Fatalf("kernel spans: %d launches, %d execs", len(launches), len(execs))
	}

	// Every launch span must be inside a layer span (serialized layer
	// profiling), and every exec span must share its launch's parent.
	byCorr := map[uint64]*trace.Span{}
	for _, l := range launches {
		p := tr.ByID(l.ParentID)
		if p == nil {
			t.Fatal("launch span without parent")
		}
		if p.Level != trace.LevelLayer && p.Name != "model_prediction" {
			t.Fatalf("launch parented to %q at level %v", p.Name, p.Level)
		}
		byCorr[l.CorrelationID] = l
	}
	for _, e := range execs {
		if e.Name == "MemcpyHtoD" || e.Name == "MemcpyDtoH" {
			continue
		}
		l, ok := byCorr[e.CorrelationID]
		if !ok {
			t.Fatalf("exec span %q has no launch (corr %d)", e.Name, e.CorrelationID)
		}
		if e.ParentID != l.ParentID {
			t.Fatalf("exec span %q parent %d != launch parent %d", e.Name, e.ParentID, l.ParentID)
		}
	}
	if Ambiguous(tr) {
		t.Fatal("serialized profile should not be ambiguous")
	}
	if res.Serialized {
		t.Fatal("should not have needed a serialized re-run")
	}
}

func TestKernelMetricsAttached(t *testing.T) {
	s := newSession()
	res, err := s.Profile(resnetGraph(t, 16), Options{Levels: MLG, GPUMetrics: cupti.StandardMetrics})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sp := range res.Trace.Spans {
		if sp.Kind == trace.KindExec && sp.Name == "volta_scudnn_128x64_relu_interior_nn_v1" {
			found = true
			if sp.Metric("flop_count_sp") <= 0 {
				t.Fatal("scudnn kernel missing flop metric")
			}
			if sp.Metric("achieved_occupancy") <= 0 || sp.Metric("achieved_occupancy") > 1 {
				t.Fatal("occupancy out of range")
			}
			if sp.Tag("grid") == "" {
				t.Fatal("grid tag missing")
			}
			break
		}
	}
	if !found {
		t.Fatal("no scudnn kernel in trace at batch 16")
	}
}

// Pipelined execution with an activity-only GPU profiler (no launch
// records to correlate through) produces ambiguous parents; Profile must
// detect this and transparently fall back to a serialized run — the
// paper's CUDA_LAUNCH_BLOCKING=1 mechanism.
func TestPipelinedActivityOnlyTriggersSerializedRerun(t *testing.T) {
	s := newSession()
	// Batch 256: per-layer GPU time exceeds the host's dispatch window,
	// so the device falls behind and kernel executions straddle layer
	// boundaries — the genuinely ambiguous case.
	res, err := s.Profile(resnetGraph(t, 256), Options{Levels: MLG, Pipelined: true, ActivityOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Serialized {
		t.Fatal("pipelined activity-only profile should have re-run serialized")
	}
	if Ambiguous(res.Trace) {
		t.Fatal("serialized re-run still ambiguous")
	}
}

// With launch spans available (callback API on), even pipelined execution
// is unambiguous: exec spans resolve their layer through the launch span's
// correlation id, so no serialized re-run is needed.
func TestPipelinedWithCallbackNeedsNoRerun(t *testing.T) {
	s := newSession()
	res, err := s.Profile(resnetGraph(t, 16), Options{Levels: MLG, Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Serialized {
		t.Fatal("launch-span correlation should have avoided the re-run")
	}
}

// The leveled experiment reproduces the paper's Fig 2 structure: each
// additional level adds overhead, while the lower-level spans within a
// higher-level run keep their accurate values.
func TestLeveledExperimentation(t *testing.T) {
	s := newSession()
	g := resnetGraph(t, 16)
	lv, err := s.LeveledProfile(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lv.ModelLatency <= 0 {
		t.Fatal("model latency missing")
	}
	if lv.LayerOverhead <= 0 {
		t.Fatalf("layer profiling overhead = %v, want > 0", lv.LayerOverhead)
	}
	if lv.GPUOverhead <= 0 {
		t.Fatalf("GPU profiling overhead = %v, want > 0", lv.GPUOverhead)
	}
	// The M/L/G prediction latency decomposes into the accurate M
	// latency plus the two overheads.
	mlgLat := PredictionLatency(lv.MLGTrace)
	if got := lv.ModelLatency + lv.LayerOverhead + lv.GPUOverhead; got != mlgLat {
		t.Fatalf("overhead decomposition %v != M/L/G latency %v", got, mlgLat)
	}
}

// Layer-level profiling overhead at batch 256 must reproduce the paper's
// magnitude: 157ms over ~234 layers (~0.67ms/layer).
func TestLayerOverheadMatchesPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("batch-256 run")
	}
	s := newSession()
	g := resnetGraph(t, 256)
	lv, err := s.LeveledProfile(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lv.LayerOverhead < 100*time.Millisecond || lv.LayerOverhead > 220*time.Millisecond {
		t.Fatalf("layer overhead = %v, paper measures 157ms", lv.LayerOverhead)
	}
}

// GPU metric collection (DRAM counters) must slow the run dramatically —
// the paper reports >100x for memory metrics.
func TestMetricProfilingIsExpensive(t *testing.T) {
	s := newSession()
	// Measured at M/G so the layer profiler's own overhead doesn't
	// dilute the replay cost.
	plain, err := s.Profile(resnetGraph(t, 16), Options{Levels: MG})
	if err != nil {
		t.Fatal(err)
	}
	withMetrics, err := s.Profile(resnetGraph(t, 16), Options{Levels: MG, GPUMetrics: cupti.StandardMetrics})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(PredictionLatency(withMetrics.Trace)) / float64(PredictionLatency(plain.Trace))
	if ratio < 15 {
		t.Fatalf("metric profiling slowdown = %.1fx, want substantial (paper: >100x on kernel time)", ratio)
	}
}

func TestCorrelateIdempotentOnEmptyTrace(t *testing.T) {
	tr := &trace.Trace{}
	Correlate(tr) // must not panic
	if Ambiguous(tr) {
		t.Fatal("empty trace ambiguous")
	}
}

func TestCorrelateFallbackWithoutLaunchSpans(t *testing.T) {
	// Activity-only capture: exec spans must fall back to containment.
	tr := &trace.Trace{Spans: []*trace.Span{
		{ID: 1, Level: trace.LevelModel, Name: "model_prediction", Begin: 0, End: 1000},
		{ID: 2, Level: trace.LevelKernel, Kind: trace.KindExec, Name: "k", Begin: 100, End: 200, CorrelationID: 7},
	}}
	Correlate(tr)
	if tr.Spans[1].ParentID != 1 {
		t.Fatalf("exec span parent = %d, want model span", tr.Spans[1].ParentID)
	}
}
