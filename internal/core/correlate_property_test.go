package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xsp/internal/trace"
	"xsp/internal/vclock"
)

// buildNestedTrace generates a random strictly-nested three-level span
// hierarchy (model -> layers -> kernels) with known ground-truth parents,
// then strips the kernel parents the way disjoint profilers would.
func buildNestedTrace(rng *rand.Rand) (*trace.Trace, map[uint64]uint64) {
	truth := map[uint64]uint64{}
	var spans []*trace.Span

	model := &trace.Span{ID: trace.NewSpanID(), Level: trace.LevelModel, Name: "model_prediction"}
	spans = append(spans, model)

	cursor := vclock.Time(0)
	nLayers := 1 + rng.Intn(6)
	for i := 0; i < nLayers; i++ {
		layer := &trace.Span{
			ID: trace.NewSpanID(), ParentID: model.ID,
			Level: trace.LevelLayer, Name: "layer",
			Begin: cursor,
		}
		inner := cursor + 1
		nKernels := rng.Intn(4)
		for k := 0; k < nKernels; k++ {
			dur := vclock.Time(1 + rng.Intn(50))
			launch := &trace.Span{
				ID: trace.NewSpanID(), Level: trace.LevelKernel,
				Kind: trace.KindLaunch, Name: "cudaLaunchKernel",
				Begin: inner, End: inner + 2, CorrelationID: uint64(1000*i + k + 1),
			}
			exec := &trace.Span{
				ID: trace.NewSpanID(), Level: trace.LevelKernel,
				Kind: trace.KindExec, Name: "kernel",
				Begin: inner + 2, End: inner + 2 + dur, CorrelationID: launch.CorrelationID,
			}
			truth[launch.ID] = layer.ID
			truth[exec.ID] = layer.ID
			spans = append(spans, launch, exec)
			inner = exec.End + 1
		}
		layer.End = inner + 1
		cursor = layer.End + vclock.Time(1+rng.Intn(5))
		spans = append(spans, layer)
	}
	model.Begin = 0
	model.End = cursor + 1
	return &trace.Trace{Spans: spans}, truth
}

// Property: for strictly nested, serialized span sets, interval-tree
// reconstruction recovers exactly the ground-truth parents.
func TestCorrelateRecoversNestedHierarchy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, truth := buildNestedTrace(rng)
		Correlate(tr)
		for id, wantParent := range truth {
			sp := tr.ByID(id)
			if sp == nil || sp.ParentID != wantParent {
				return false
			}
		}
		return !Ambiguous(tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Correlate never overwrites parents that tracers recorded
// directly.
func TestCorrelatePreservesExplicitParents(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, _ := buildNestedTrace(rng)
		want := map[uint64]uint64{}
		for _, sp := range tr.Spans {
			if sp.ParentID != 0 {
				want[sp.ID] = sp.ParentID
			}
		}
		Correlate(tr)
		for id, p := range want {
			if tr.ByID(id).ParentID != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
