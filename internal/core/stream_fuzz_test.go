package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"xsp/internal/core"
	"xsp/internal/segio"
	"xsp/internal/segio/faultfs"
	"xsp/internal/trace"
	"xsp/internal/vclock"
	"xsp/internal/workload"
)

// FuzzStreamVsBatch is the streaming correlator's equivalence fuzz: random
// span shapes (span count, pipelined stream count, device-only capture) ×
// arrival regimes (batch size, bounded skew, straggler windows) × lifecycle
// knobs (reorder window, checkpoint retention, degraded-window size bound)
// must all land, after Flush, on exactly the batch CorrelateWith
// assignment. The seed corpus is the property-test matrix: each entry is
// one shape×arrival combination TestStreamCorrelatorMatchesBatch pins.
// CorrRetain is deliberately not fuzzed — its horizon trades exactness for
// bounded memory by contract (see TestStreamCorrelatorCorrRetentionHorizon
// for its documented behavior).
//
// The durable dimension backs the correlator with an in-memory segio
// store (FeedLogged ack barrier, checkpoint ladder spilled to segment
// files) and, at a fuzz-chosen batch index, simulates a process restart:
// close the store, reopen the surviving files, RecoverStream, and keep
// feeding. Equivalence with the batch oracle must hold through the
// restart — recovery is part of the correlator's exactness contract, not
// a best-effort path.
//
// The tenant dimension (tenants >= 2) runs the same knobs through a
// TenantSet instead of a bare correlator: each tenant gets its own
// workload, the tenants' batches interleave round-robin, and every
// tenant's stream must equal its own batch oracle — with wireBinary
// round-tripping tenant-tagged v2 frames and a durable restart tearing
// down and recovering the whole set mid-interleave.
func FuzzStreamVsBatch(f *testing.F) {
	// spans, streams, dropLaunches, batchSize, skew, window, stragglerWin, maxWindow, retain, seed, durable, restartAt, wireBinary, tenants
	f.Add(uint16(2_000), uint8(1), false, uint16(128), uint16(0), uint16(0), uint16(0), int16(0), uint16(0), int64(1), false, uint16(0), false, uint8(0))
	f.Add(uint16(2_000), uint8(3), false, uint16(128), uint16(0), uint16(0), uint16(0), int16(0), uint16(0), int64(2), false, uint16(0), false, uint8(0))
	f.Add(uint16(2_000), uint8(1), true, uint16(128), uint16(0), uint16(0), uint16(0), int16(0), uint16(0), int64(3), false, uint16(0), false, uint8(0))
	f.Add(uint16(2_000), uint8(1), false, uint16(128), uint16(48), uint16(48), uint16(0), int16(0), uint16(0), int64(4), false, uint16(0), false, uint8(0))
	f.Add(uint16(2_000), uint8(3), false, uint16(64), uint16(64), uint16(8), uint16(0), int16(0), uint16(0), int64(5), false, uint16(0), false, uint8(0))
	f.Add(uint16(2_000), uint8(1), true, uint16(128), uint16(64), uint16(8), uint16(0), int16(0), uint16(0), int64(6), false, uint16(0), false, uint8(0))
	f.Add(uint16(3_000), uint8(1), false, uint16(256), uint16(0), uint16(0), uint16(512), int16(0), uint16(0), int64(7), false, uint16(0), false, uint8(0))
	f.Add(uint16(3_000), uint8(3), false, uint16(256), uint16(0), uint16(0), uint16(512), int16(96), uint16(0), int64(8), false, uint16(0), false, uint8(0))
	f.Add(uint16(3_000), uint8(3), false, uint16(256), uint16(32), uint16(32), uint16(0), int16(64), uint16(512), int64(9), false, uint16(0), false, uint8(0))
	f.Add(uint16(3_000), uint8(1), true, uint16(256), uint16(32), uint16(32), uint16(256), int16(0), uint16(256), int64(10), false, uint16(0), false, uint8(0))
	// Durable seeds: the crash-matrix shape (folds + stragglers +
	// reopens), a restart before the first batch, and a restart deep in
	// the stream after many folds.
	f.Add(uint16(3_000), uint8(2), false, uint16(32), uint16(8), uint16(16), uint16(24), int16(0), uint16(32), int64(7), true, uint16(40), false, uint8(0))
	f.Add(uint16(2_000), uint8(3), false, uint16(64), uint16(64), uint16(8), uint16(0), int16(0), uint16(64), int64(5), true, uint16(0), false, uint8(0))
	f.Add(uint16(3_000), uint8(1), true, uint16(256), uint16(32), uint16(32), uint16(256), int16(0), uint16(256), int64(10), true, uint16(60_000), false, uint8(0))
	// Binary-wire seeds: every batch round-trips through the span frame
	// codec before feeding — the HTTP binary ingest path — including one
	// with a mid-stream durable restart.
	f.Add(uint16(2_000), uint8(3), false, uint16(64), uint16(64), uint16(8), uint16(0), int16(0), uint16(0), int64(5), false, uint16(0), true, uint8(0))
	f.Add(uint16(3_000), uint8(2), false, uint16(32), uint16(8), uint16(16), uint16(24), int16(0), uint16(32), int64(7), true, uint16(40), true, uint8(0))
	// Tenant-interleave seeds: RAM-only, durable with a whole-set restart
	// mid-interleave, and tenant-tagged binary frames.
	f.Add(uint16(2_000), uint8(3), false, uint16(64), uint16(64), uint16(8), uint16(0), int16(0), uint16(0), int64(5), false, uint16(0), false, uint8(3))
	f.Add(uint16(2_000), uint8(2), false, uint16(32), uint16(8), uint16(16), uint16(24), int16(0), uint16(32), int64(7), true, uint16(40), false, uint8(2))
	f.Add(uint16(2_000), uint8(3), false, uint16(64), uint16(64), uint16(8), uint16(0), int16(0), uint16(64), int64(5), true, uint16(30), true, uint8(3))

	f.Fuzz(func(t *testing.T, spans uint16, streams uint8, dropLaunches bool,
		batchSize, skew, window uint16, stragglerWin uint16, maxWindow int16, retain uint16, seed int64,
		durable bool, restartAt uint16, wireBinary bool, tenants uint8) {
		n := int(spans)
		if n < 16 {
			n = 16
		}
		if n > 4_096 {
			n = 4_096
		}
		if T := int(tenants % 4); T >= 2 {
			fuzzTenantInterleave(t, T, n, streams, dropLaunches,
				batchSize, skew, window, stragglerWin, maxWindow, retain, seed,
				durable, restartAt, wireBinary)
			return
		}
		batches := workload.StreamingArrivals(workload.StreamingSpec{
			Trace: workload.SyntheticSpec{
				Spans:        n,
				Streams:      int(streams % 4),
				DropLaunches: dropLaunches,
				Seed:         seed,
			},
			BatchSize:       int(batchSize % 1024),
			ReorderSkew:     vclock.Duration(skew % 512),
			StragglerWindow: vclock.Duration(stragglerWin % 2048),
			Seed:            seed + 1,
		})
		if wireBinary {
			// The binary ingest path: round-trip every batch through the
			// wire codec before feeding, exactly as spans arrive off
			// /api/spans. The decoded clones carry the same IDs and
			// tracer-truth parents, so the oracle below is unaffected;
			// DecodeBinary's canonical within-batch order is what a real
			// binary-ingesting server publishes.
			for i, b := range batches {
				tr, err := trace.DecodeBinary(bytes.NewReader(trace.AppendBinaryFrame(nil, b)))
				if err != nil {
					t.Fatalf("batch %d failed the wire round trip: %v", i, err)
				}
				batches[i] = tr.Spans
			}
		}
		// The oracle must come from pristine spans: CorrelateWith keeps
		// nonzero parents as tracer truth, and feeding mutates the spans
		// in place (batchParents clones, so compute it before the feed).
		want := batchParents(batches)
		opts := core.StreamOptions{
			ReorderWindow:  vclock.Duration(window % 512),
			MaxWindowSpans: int(maxWindow), // negative = unbounded, 0 = default, tiny = aggressive chaining
			Retain:         vclock.Duration(retain % 4096),
		}
		var sc *core.StreamCorrelator
		var fs *faultfs.FS
		var st *segio.Store
		if durable {
			fs = faultfs.New() // unarmed: a perfect disk, no injected crash
			var rec *segio.Recovery
			var err error
			st, rec, err = segio.Open(fs, segio.Options{})
			if err != nil {
				t.Fatalf("open store: %v", err)
			}
			opts.Store = st
			if sc, err = core.RecoverStream(opts, rec); err != nil {
				t.Fatalf("recover empty store: %v", err)
			}
		} else {
			sc = core.NewStreamCorrelator(opts)
		}
		restart := -1
		if durable && len(batches) > 0 {
			restart = int(restartAt) % len(batches)
		}
		for i, b := range batches {
			if i == restart {
				// Simulated process restart: the store closes mid-stream
				// and the correlator is rebuilt from what the files hold.
				if err := st.Close(); err != nil {
					t.Fatalf("close store before restart: %v", err)
				}
				store, rec, err := segio.Open(fs, segio.Options{})
				if err != nil {
					t.Fatalf("reopen store: %v", err)
				}
				if len(rec.Quarantined) != 0 {
					t.Fatalf("clean restart quarantined %v", rec.Quarantined)
				}
				st = store
				opts.Store = st
				if sc, err = core.RecoverStream(opts, rec); err != nil {
					t.Fatalf("recover after restart: %v", err)
				}
			}
			if durable {
				if err := sc.FeedLogged(uint64(i+1), b...); err != nil {
					t.Fatalf("batch %d not acked on a healthy disk: %v", i+1, err)
				}
			} else {
				sc.Feed(b...)
			}
		}
		sc.Flush()
		if err := sc.DurabilityErr(); err != nil {
			t.Fatalf("durability error latched on a healthy disk: %v", err)
		}

		got := sc.Trace()
		if len(got.Spans) != len(want) {
			t.Fatalf("stream holds %d spans, fed %d", len(got.Spans), len(want))
		}
		for _, s := range got.Spans {
			if s.ParentID != want[s.ID] {
				t.Fatalf("span %d (%v %v [%d,%d) corr %d): stream parent %d, batch parent %d",
					s.ID, s.Level, s.Kind, s.Begin, s.End, s.CorrelationID, s.ParentID, want[s.ID])
			}
		}
		// Conservation: checkpointing must never drop or duplicate spans,
		// restart or not.
		stats := sc.Stats()
		if stats.Live+stats.Checkpointed != len(want) {
			t.Fatalf("live %d + checkpointed %d != fed %d", stats.Live, stats.Checkpointed, len(want))
		}
	})
}

// fuzzTenantInterleave is the multi-tenant arm of FuzzStreamVsBatch: T
// tenants' independent workloads interleave round-robin through one
// TenantSet, and every tenant's stream must land on its own batch
// oracle. The durable dimension gives each tenant its own store and
// restarts the entire set mid-interleave; the wire dimension round-trips
// each batch through a tenant-tagged v2 binary frame.
func fuzzTenantInterleave(t *testing.T, T, n int, streams uint8, dropLaunches bool,
	batchSize, skew, window uint16, stragglerWin uint16, maxWindow int16, retain uint16, seed int64,
	durable bool, restartAt uint16, wireBinary bool) {
	keys := make([]string, T)
	loads := make([][][]*trace.Span, T)
	wants := make([]map[uint64]uint64, T)
	total := 0
	for k := 0; k < T; k++ {
		keys[k] = fmt.Sprintf("t%d", k)
		loads[k] = workload.StreamingArrivals(workload.StreamingSpec{
			Trace: workload.SyntheticSpec{
				Spans:        n,
				Streams:      int(streams % 4),
				DropLaunches: dropLaunches,
				Seed:         seed + int64(k)*101,
			},
			BatchSize:       int(batchSize % 1024),
			ReorderSkew:     vclock.Duration(skew % 512),
			StragglerWindow: vclock.Duration(stragglerWin % 2048),
			Seed:            seed + 1 + int64(k)*103,
		})
		if wireBinary {
			for i, b := range loads[k] {
				tr, err := trace.DecodeBinary(bytes.NewReader(trace.AppendBinaryFrameTenant(nil, keys[k], b)))
				if err != nil {
					t.Fatalf("tenant %s batch %d failed the wire round trip: %v", keys[k], i, err)
				}
				if tr.Tenant != keys[k] {
					t.Fatalf("tenant %s batch %d decoded as tenant %q", keys[k], i, tr.Tenant)
				}
				loads[k][i] = tr.Spans
			}
		}
		wants[k] = batchParents(loads[k])
		total += len(loads[k])
	}

	setOpts := core.TenantSetOptions{Stream: core.StreamOptions{
		ReorderWindow:  vclock.Duration(window % 512),
		MaxWindowSpans: int(maxWindow),
		Retain:         vclock.Duration(retain % 4096),
	}}
	if durable {
		fses := make(map[string]*faultfs.FS, T)
		for _, key := range keys {
			fses[key] = faultfs.New() // unarmed: a perfect disk per tenant
		}
		setOpts.OpenStore = func(tenant string) (*segio.Store, *segio.Recovery, error) {
			return segio.Open(fses[tenant], segio.Options{})
		}
	}
	set := core.NewTenantSet(setOpts)

	restart := -1
	if durable && total > 0 {
		restart = int(restartAt) % total
	}
	fed := 0
	next := make([]int, T) // per-tenant batch cursor; also the tenant's next batch id - 1
	for done := false; !done; {
		done = true
		for k := 0; k < T; k++ {
			j := next[k]
			if j >= len(loads[k]) {
				continue
			}
			done = false
			if fed == restart {
				// Simulated process restart mid-interleave: every tenant's
				// store closes, and a fresh set recovers each tenant from
				// its own surviving files.
				set.Each(func(st *core.TenantStream) {
					if err := st.Store().Close(); err != nil {
						t.Fatalf("close %s store before restart: %v", st.Key(), err)
					}
				})
				set = core.NewTenantSet(setOpts)
			}
			st, err := set.Stream(keys[k])
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Err(); err != nil {
				t.Fatalf("tenant %s degraded on a healthy disk: %v", keys[k], err)
			}
			if durable {
				if err := st.IngestLogged(uint64(j+1), loads[k][j]); err != nil {
					t.Fatalf("tenant %s batch %d not acked on a healthy disk: %v", keys[k], j+1, err)
				}
			} else {
				st.Publish(loads[k][j]...)
			}
			next[k] = j + 1
			fed++
		}
	}

	for k := 0; k < T; k++ {
		// Stream, not Lookup: a tenant that finished feeding before the
		// whole-set restart exists only in its durable files at this point,
		// and reading it back is itself recovery under test.
		st, err := set.Stream(keys[k])
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Err(); err != nil {
			t.Fatalf("tenant %s degraded on a healthy disk: %v", keys[k], err)
		}
		sc := st.Correlator()
		sc.Flush()
		if err := sc.DurabilityErr(); err != nil {
			t.Fatalf("tenant %s latched a durability error on a healthy disk: %v", keys[k], err)
		}
		got := sc.Trace()
		if len(got.Spans) != len(wants[k]) {
			t.Fatalf("tenant %s stream holds %d spans, fed %d", keys[k], len(got.Spans), len(wants[k]))
		}
		for _, s := range got.Spans {
			if s.ParentID != wants[k][s.ID] {
				t.Fatalf("tenant %s span %d (%v %v [%d,%d) corr %d): stream parent %d, batch parent %d",
					keys[k], s.ID, s.Level, s.Kind, s.Begin, s.End, s.CorrelationID, s.ParentID, wants[k][s.ID])
			}
		}
		stats := sc.Stats()
		if stats.Live+stats.Checkpointed != len(wants[k]) {
			t.Fatalf("tenant %s: live %d + checkpointed %d != fed %d",
				keys[k], stats.Live, stats.Checkpointed, len(wants[k]))
		}
	}
}
