package core_test

import (
	"testing"

	"xsp/internal/core"
	"xsp/internal/vclock"
	"xsp/internal/workload"
)

// FuzzStreamVsBatch is the streaming correlator's equivalence fuzz: random
// span shapes (span count, pipelined stream count, device-only capture) ×
// arrival regimes (batch size, bounded skew, straggler windows) × lifecycle
// knobs (reorder window, checkpoint retention, degraded-window size bound)
// must all land, after Flush, on exactly the batch CorrelateWith
// assignment. The seed corpus is the property-test matrix: each entry is
// one shape×arrival combination TestStreamCorrelatorMatchesBatch pins.
// CorrRetain is deliberately not fuzzed — its horizon trades exactness for
// bounded memory by contract (see TestStreamCorrelatorCorrRetentionHorizon
// for its documented behavior).
func FuzzStreamVsBatch(f *testing.F) {
	// spans, streams, dropLaunches, batchSize, skew, window, stragglerWin, maxWindow, retain, seed
	f.Add(uint16(2_000), uint8(1), false, uint16(128), uint16(0), uint16(0), uint16(0), int16(0), uint16(0), int64(1))
	f.Add(uint16(2_000), uint8(3), false, uint16(128), uint16(0), uint16(0), uint16(0), int16(0), uint16(0), int64(2))
	f.Add(uint16(2_000), uint8(1), true, uint16(128), uint16(0), uint16(0), uint16(0), int16(0), uint16(0), int64(3))
	f.Add(uint16(2_000), uint8(1), false, uint16(128), uint16(48), uint16(48), uint16(0), int16(0), uint16(0), int64(4))
	f.Add(uint16(2_000), uint8(3), false, uint16(64), uint16(64), uint16(8), uint16(0), int16(0), uint16(0), int64(5))
	f.Add(uint16(2_000), uint8(1), true, uint16(128), uint16(64), uint16(8), uint16(0), int16(0), uint16(0), int64(6))
	f.Add(uint16(3_000), uint8(1), false, uint16(256), uint16(0), uint16(0), uint16(512), int16(0), uint16(0), int64(7))
	f.Add(uint16(3_000), uint8(3), false, uint16(256), uint16(0), uint16(0), uint16(512), int16(96), uint16(0), int64(8))
	f.Add(uint16(3_000), uint8(3), false, uint16(256), uint16(32), uint16(32), uint16(0), int16(64), uint16(512), int64(9))
	f.Add(uint16(3_000), uint8(1), true, uint16(256), uint16(32), uint16(32), uint16(256), int16(0), uint16(256), int64(10))

	f.Fuzz(func(t *testing.T, spans uint16, streams uint8, dropLaunches bool,
		batchSize, skew, window uint16, stragglerWin uint16, maxWindow int16, retain uint16, seed int64) {
		n := int(spans)
		if n < 16 {
			n = 16
		}
		if n > 4_096 {
			n = 4_096
		}
		batches := workload.StreamingArrivals(workload.StreamingSpec{
			Trace: workload.SyntheticSpec{
				Spans:        n,
				Streams:      int(streams % 4),
				DropLaunches: dropLaunches,
				Seed:         seed,
			},
			BatchSize:       int(batchSize % 1024),
			ReorderSkew:     vclock.Duration(skew % 512),
			StragglerWindow: vclock.Duration(stragglerWin % 2048),
			Seed:            seed + 1,
		})
		sc := core.NewStreamCorrelator(core.StreamOptions{
			ReorderWindow:  vclock.Duration(window % 512),
			MaxWindowSpans: int(maxWindow), // negative = unbounded, 0 = default, tiny = aggressive chaining
			Retain:         vclock.Duration(retain % 4096),
		})
		feedAll(sc, batches)
		sc.Flush()

		want := batchParents(batches)
		got := sc.Trace()
		if len(got.Spans) != len(want) {
			t.Fatalf("stream holds %d spans, fed %d", len(got.Spans), len(want))
		}
		for _, s := range got.Spans {
			if s.ParentID != want[s.ID] {
				t.Fatalf("span %d (%v %v [%d,%d) corr %d): stream parent %d, batch parent %d",
					s.ID, s.Level, s.Kind, s.Begin, s.End, s.CorrelationID, s.ParentID, want[s.ID])
			}
		}
		// Conservation: checkpointing must never drop or duplicate spans.
		st := sc.Stats()
		if st.Live+st.Checkpointed != len(want) {
			t.Fatalf("live %d + checkpointed %d != fed %d", st.Live, st.Checkpointed, len(want))
		}
	})
}
