package core_test

// Fault-injection tests for the durable stream correlator: kill the
// store at every filesystem operation, reboot from the surviving durable
// state, finish the stream, and require the result to equal the batch
// oracle span for span. The faultfs crash model (content durable to the
// last Sync, names durable to the last SyncDir) is what makes "every
// crash point" enumerable.

import (
	"fmt"
	"testing"

	"xsp/internal/core"
	"xsp/internal/segio"
	"xsp/internal/segio/faultfs"
	"xsp/internal/trace"
	"xsp/internal/workload"
)

// durableOpts is the correlator configuration the fault tests run under:
// a small reorder window and retain horizon so folds, compactions, and
// rotations all happen many times within a modest workload.
func durableOpts(store core.SegmentStore) core.StreamOptions {
	return core.StreamOptions{
		ReorderWindow: 16,
		Retain:        32,
		Store:         store,
	}
}

// durableWorkload is a stream with reordering, pipelined overlap, and a
// withheld straggler window — every repair path a crash can interleave
// with.
func durableWorkload(spans int) [][]*trace.Span {
	return workload.StreamingArrivals(workload.StreamingSpec{
		Trace:           workload.SyntheticSpec{Spans: spans, Streams: 2, Seed: 7},
		BatchSize:       32,
		ReorderSkew:     8,
		StragglerWindow: 24,
		Seed:            11,
	})
}

func cloneBatch(b []*trace.Span) []*trace.Span {
	out := make([]*trace.Span, len(b))
	for i, s := range b {
		out[i] = s.Clone()
	}
	return out
}

// feedDurable plays the client role: batches are fed through the
// FeedLogged ack barrier under ids 1..n (with a Checkpoint every few
// batches to exercise the segment path), and a batch counts as acked only
// when FeedLogged returns nil — the WAL fsync happened, the client may
// drop it. Feeding stops at the first sign of the injected crash. Fed
// spans are cloned so a later recovery run can refeed the originals.
func feedDurable(sc *core.StreamCorrelator, batches [][]*trace.Span) (acked int, crashed bool) {
	for i, b := range batches {
		if err := sc.FeedLogged(uint64(i+1), cloneBatch(b)...); err != nil {
			return acked, true
		}
		acked++ // durable before any later failure: the record is fsynced
		if sc.DurabilityErr() != nil {
			return acked, true
		}
		if (i+1)%4 == 0 {
			sc.Checkpoint()
			if sc.DurabilityErr() != nil {
				return acked, true
			}
		}
	}
	return acked, false
}

// spanIDSet collects the span ids of a trace.
func spanIDSet(t *trace.Trace) map[uint64]bool {
	ids := make(map[uint64]bool, len(t.Spans))
	for _, s := range t.Spans {
		ids[s.ID] = true
	}
	return ids
}

// TestDurableStreamCrashMatrix is the recovery oracle: for every
// filesystem operation the store performs over a full workload, crash
// there (cleanly, and with a torn unsynced tail), reboot from the durable
// state, refeed the batches the client never got an ack for, finish the
// stream, and require the recovered correlator's trace to equal the
// uncrashed batch correlation span for span. Along the way it pins the
// ack contract (every acked batch id is in the recovered dedup window,
// and nothing more) and that a clean or torn crash never quarantines a
// file — torn tails are truncated by checksum, not half-loaded.
func TestDurableStreamCrashMatrix(t *testing.T) {
	batches := durableWorkload(3_000)
	want := batchParents(batches)

	// Dry run on an unarmed FS: checks the durable path end to end and
	// counts the store's mutating operations — the crash points.
	dry := faultfs.New()
	st, rec, err := segio.Open(dry, segio.Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	sc, err := core.RecoverStream(durableOpts(st), rec)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if acked, crashed := feedDurable(sc, batches); crashed || acked != len(batches) {
		t.Fatalf("unarmed run crashed after %d/%d batches: %v", acked, len(batches), sc.DurabilityErr())
	}
	sc.Flush()
	if err := sc.DurabilityErr(); err != nil {
		t.Fatalf("unarmed run latched: %v", err)
	}
	assertStreamMatchesBatch(t, sc, batches)
	if s := sc.Stats(); s.Compactions == 0 || s.Stragglers == 0 || s.Reopens == 0 {
		// The matrix is only worth its cost if folds, compaction merges,
		// and a checkpoint reopen (the staleSegs/DropSegments path) all
		// actually put file operations on the timeline being crashed.
		t.Fatalf("workload not adversarial enough: %+v", s)
	}
	total := dry.Ops()
	if total < 100 {
		t.Fatalf("suspiciously few store operations to crash at: %d", total)
	}

	stride := 1
	if testing.Short() {
		stride = 13
	}
	modes := []struct {
		name string
		mode faultfs.Mode
	}{{"clean", faultfs.ModeClean}, {"torn", faultfs.ModeTorn}}
	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			t.Parallel()
			for crash := 0; crash < total; crash += stride {
				ctx := fmt.Sprintf("crash@%d/%d", crash, total)

				// The doomed process.
				fs := faultfs.New()
				fs.Arm(faultfs.Plan{CrashAfter: crash, Mode: m.mode})
				acked := 0
				if st, rec, err := segio.Open(fs, segio.Options{}); err == nil {
					if sc, err := core.RecoverStream(durableOpts(st), rec); err == nil {
						acked, _ = feedDurable(sc, batches)
					}
				}

				// Reboot from the durable view.
				st2, rec2, err := segio.Open(fs.Recovered(), segio.Options{})
				if err != nil {
					t.Fatalf("%s: recovery open: %v", ctx, err)
				}
				if len(rec2.Quarantined) != 0 {
					t.Fatalf("%s: crash quarantined %v — synced data must never fail validation", ctx, rec2.Quarantined)
				}
				if len(rec2.DedupIDs) != acked {
					t.Fatalf("%s: %d batches acked but %d dedup ids recovered", ctx, acked, len(rec2.DedupIDs))
				}
				for _, id := range rec2.DedupIDs {
					if id == 0 || id > uint64(acked) {
						t.Fatalf("%s: recovered dedup id %d outside acked range 1..%d", ctx, id, acked)
					}
				}

				sc2, err := core.RecoverStream(durableOpts(st2), rec2)
				if err != nil {
					t.Fatalf("%s: recover: %v", ctx, err)
				}
				// The client retries everything it holds no ack for.
				for i := acked; i < len(batches); i++ {
					if err := sc2.FeedLogged(uint64(i+1), cloneBatch(batches[i])...); err != nil {
						t.Fatalf("%s: refeed batch %d: %v", ctx, i+1, err)
					}
				}
				sc2.Flush()
				if err := sc2.DurabilityErr(); err != nil {
					t.Fatalf("%s: recovered run latched: %v", ctx, err)
				}
				got := sc2.Trace()
				if len(got.Spans) != len(want) {
					t.Fatalf("%s: recovered %d spans, want %d", ctx, len(got.Spans), len(want))
				}
				for _, s := range got.Spans {
					if s.ParentID != want[s.ID] {
						t.Fatalf("%s: span %d: recovered parent %d, batch parent %d", ctx, s.ID, s.ParentID, want[s.ID])
					}
				}
			}
		})
	}
}

// A lying disk (fsync acknowledged, nothing persisted) voids the
// durability claim — but recovery must still come up clean and empty, not
// half-load whatever the page cache left behind.
func TestDurableStreamDropSyncRecoversClean(t *testing.T) {
	fs := faultfs.New()
	fs.Arm(faultfs.Plan{CrashAfter: 1 << 30, DropSync: true})
	st, rec, err := segio.Open(fs, segio.Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	sc, err := core.RecoverStream(durableOpts(st), rec)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	batches := durableWorkload(600)
	if acked, crashed := feedDurable(sc, batches); crashed || acked != len(batches) {
		t.Fatalf("lying disk must keep acking: %d/%d, %v", acked, len(batches), sc.DurabilityErr())
	}

	st2, rec2, err := segio.Open(fs.Recovered(), segio.Options{})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	if len(rec2.Segments) != 0 || rec2.Snapshot != nil || len(rec2.Batches) != 0 || len(rec2.DedupIDs) != 0 {
		t.Fatalf("nothing was ever durable, yet recovery found segments=%d snapshot=%v batches=%d dedup=%d",
			len(rec2.Segments), rec2.Snapshot != nil, len(rec2.Batches), len(rec2.DedupIDs))
	}
	sc2, err := core.RecoverStream(durableOpts(st2), rec2)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if got := sc2.Trace(); len(got.Spans) != 0 {
		t.Fatalf("recovered %d spans from a disk that never persisted any", len(got.Spans))
	}
}

// At-rest corruption: flip a bit inside a published segment file, reopen,
// and require the file to be quarantined whole — the recovered trace is
// exactly the surviving files' spans, never a half-decoded segment.
func TestDurableStreamQuarantinesCorruptSegment(t *testing.T) {
	fs := faultfs.New()
	st, rec, err := segio.Open(fs, segio.Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	sc, err := core.RecoverStream(durableOpts(st), rec)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	batches := durableWorkload(1_200)
	if acked, crashed := feedDurable(sc, batches); crashed || acked != len(batches) {
		t.Fatalf("healthy run crashed: %d/%d, %v", acked, len(batches), sc.DurabilityErr())
	}
	sc.Flush()
	if err := sc.DurabilityErr(); err != nil {
		t.Fatalf("healthy run latched: %v", err)
	}
	all := spanIDSet(sc.Trace())
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Map one segment file to the spans that will be lost with it.
	_, recA, err := segio.Open(fs, segio.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(recA.Segments) < 2 {
		t.Fatalf("want >=2 segments on disk, have %d", len(recA.Segments))
	}
	victim := recA.Segments[0]
	name := fmt.Sprintf("seg-%016x.seg", victim.ID)
	data, err := fs.ReadFile(name)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	if err := fs.Corrupt(name, len(data)/2); err != nil {
		t.Fatalf("corrupt: %v", err)
	}

	stB, recB, err := segio.Open(fs, segio.Options{})
	if err != nil {
		t.Fatalf("open after corruption: %v", err)
	}
	if len(recB.Quarantined) != 1 {
		t.Fatalf("quarantined %v, want exactly the corrupt segment", recB.Quarantined)
	}
	if len(recB.Segments) != len(recA.Segments)-1 {
		t.Fatalf("recovered %d segments, want %d", len(recB.Segments), len(recA.Segments)-1)
	}
	scB, err := core.RecoverStream(durableOpts(stB), recB)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	scB.Flush()
	got := spanIDSet(scB.Trace())
	lost := spanIDSet(&trace.Trace{Spans: victim.Spans})
	for id := range got {
		if !all[id] {
			t.Fatalf("recovered span %d was never fed", id)
		}
		if lost[id] {
			t.Fatalf("span %d half-loaded out of the quarantined segment", id)
		}
	}
	if len(got) != len(all)-len(lost) {
		t.Fatalf("recovered %d spans, want %d (=%d total - %d quarantined)", len(got), len(all)-len(lost), len(all), len(lost))
	}
}

// Regression (ROADMAP carry-over): a straggler used to pin the fold
// horizon — finalizedBefore stops at the oldest unrepaired straggler — so
// one deep straggler froze checkpointing until the next explicit Flush.
// With Retain set, stragglers now repair at feed time; a Checkpoint right
// after the straggler batch (no Flush) must fold past it.
func TestStreamCorrelatorStragglerDoesNotPinFoldHorizon(t *testing.T) {
	const n = 4_000
	batches := workload.StreamingArrivals(workload.StreamingSpec{
		Trace:           workload.SyntheticSpec{Spans: n, Seed: 5},
		BatchSize:       64,
		StragglerWindow: 24,
		StragglerPos:    0.25, // withheld early: a pinned horizon would keep ~3/4 of the trace live
		Seed:            9,
	})
	sc := core.NewStreamCorrelator(core.StreamOptions{ReorderWindow: 16, Retain: 32})
	feedAll(sc, batches)
	st := sc.Stats()
	if st.Stragglers == 0 {
		t.Fatal("workload produced no stragglers")
	}
	if st.Repaired == 0 {
		t.Fatal("stragglers were not repaired at feed time")
	}
	sc.Checkpoint()
	st = sc.Stats()
	if st.Live > st.Fed/2 {
		t.Fatalf("fold horizon still pinned by the straggler window: %d of %d spans live after Checkpoint", st.Live, st.Fed)
	}
	sc.Flush()
	assertStreamMatchesBatch(t, sc, batches)
}
