package core

import (
	"fmt"
	"runtime"
	"sync"

	"xsp/internal/segio"
	"xsp/internal/trace"
)

// TenantSetOptions configures a TenantSet.
type TenantSetOptions struct {
	// Stream is the option template every tenant's correlator is built
	// from. Its Store field is ignored — durability is wired per tenant
	// through OpenStore, which is what keeps one tenant's WAL, segments,
	// and quarantine in its own directory.
	Stream StreamOptions

	// InitStream, when non-nil, customizes one tenant's stream options at
	// creation time, before the correlator is built — and, crucially,
	// before RecoverStream replays the tenant's durable state — so a
	// per-tenant StreamOptions.Observer (an analysis.Online engine, say)
	// sees recovered history too. The returned options' Store field is
	// ignored; durability stays wired through OpenStore.
	InitStream func(tenant string, opts StreamOptions) StreamOptions

	// OpenStore opens (or creates) the named tenant's durable store and
	// returns what segio recovered from it; the tenant's correlator is
	// then rebuilt with RecoverStream, so every tenant's checkpoint ladder
	// and dedup window comes back independently after a crash. Nil runs
	// every tenant RAM-only. An OpenStore or recovery error does not fail
	// tenant creation: the tenant degrades to a RAM-only correlator and
	// the error is surfaced through TenantStream.Err — the same
	// keep-ingesting posture as StreamCorrelator.DurabilityErr.
	OpenStore func(tenant string) (*segio.Store, *segio.Recovery, error)

	// Workers bounds how many tenants' feeds run concurrently: each
	// Publish/IngestLogged holds one worker slot while its correlator
	// consumes the batch. Zero means GOMAXPROCS. Within one tenant the
	// correlator's own mutex serializes feeds, so per-tenant arrival order
	// (and the reorder window's meaning) is untouched; the pool only caps
	// cross-tenant parallelism so a many-tenant burst cannot run the
	// process out of scheduler headroom.
	Workers int
}

// TenantSet owns one streaming correlator per tenant key, created lazily
// on first use — the core-side counterpart of trace.Server's tenant
// table. Distinct tenants share nothing but the worker pool: separate
// correlators (separate locks, separate reorder windows, separate
// checkpoint ladders), separate durable stores, separate pressure
// signals. Feeds for distinct tenants therefore run in parallel across
// cores, while each tenant keeps the exact single-stream semantics of its
// own StreamCorrelator.
type TenantSet struct {
	opts TenantSetOptions
	sem  chan struct{}

	mu      sync.RWMutex
	streams map[string]*TenantStream
	keys    []string // creation order, for stable iteration
}

// NewTenantSet returns an empty set; tenants materialize on first
// Stream call.
func NewTenantSet(opts TenantSetOptions) *TenantSet {
	opts.Stream.Store = nil
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &TenantSet{opts: opts, sem: make(chan struct{}, w)}
}

// TenantStream is one tenant's slice of a TenantSet: its correlator, its
// durable store (when the set opens stores), and what recovery found in
// it. It implements trace.Collector, trace.DurableSink, and
// trace.LoadReporter, so it can be handed to a ServerTenant's tap,
// durable-sink, and load hooks directly.
type TenantStream struct {
	set *TenantSet
	key string

	sc    *StreamCorrelator
	store *segio.Store
	rec   *segio.Recovery
	err   error // OpenStore/recovery failure; the stream runs RAM-only past it
}

// Stream returns the named tenant's stream, creating (and, with OpenStore
// set, recovering) it on first use. The empty key canonicalizes to
// trace.DefaultTenant; an invalid key is an error.
func (ts *TenantSet) Stream(key string) (*TenantStream, error) {
	if err := trace.ValidateTenant(key); err != nil {
		return nil, err
	}
	key = trace.CanonicalTenant(key)
	ts.mu.RLock()
	st := ts.streams[key]
	ts.mu.RUnlock()
	if st != nil {
		return st, nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if st = ts.streams[key]; st != nil {
		return st, nil
	}
	st = &TenantStream{set: ts, key: key}
	opts := ts.opts.Stream
	if ts.opts.InitStream != nil {
		opts = ts.opts.InitStream(key, opts)
		opts.Store = nil
	}
	if ts.opts.OpenStore != nil {
		store, rec, err := ts.opts.OpenStore(key)
		if err == nil {
			opts.Store = store
			sc, rerr := RecoverStream(opts, rec)
			if rerr == nil {
				st.sc, st.store, st.rec = sc, store, rec
			} else {
				err = rerr
			}
		}
		if err != nil {
			// Degrade to RAM-only rather than refuse the tenant: ingest
			// stays available and the error is inspectable, exactly like a
			// durability error latching mid-stream.
			st.err = fmt.Errorf("core: tenant %q durable store: %w", key, err)
		}
	}
	if st.sc == nil {
		opts.Store = nil
		st.sc = NewStreamCorrelator(opts)
	}
	if ts.streams == nil {
		ts.streams = make(map[string]*TenantStream)
	}
	ts.streams[key] = st
	ts.keys = append(ts.keys, key)
	return st, nil
}

// Lookup returns the named tenant's stream only if it already exists.
func (ts *TenantSet) Lookup(key string) *TenantStream {
	key = trace.CanonicalTenant(key)
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	return ts.streams[key]
}

// Keys returns every tenant key the set has created, in creation order.
func (ts *TenantSet) Keys() []string {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	out := make([]string, len(ts.keys))
	copy(out, ts.keys)
	return out
}

// Each calls fn for every existing tenant stream, in creation order.
func (ts *TenantSet) Each(fn func(*TenantStream)) {
	for _, key := range ts.Keys() {
		if st := ts.Lookup(key); st != nil {
			fn(st)
		}
	}
}

// Key returns the tenant's key.
func (st *TenantStream) Key() string { return st.key }

// Correlator returns the tenant's streaming correlator, for read-side
// endpoints (stats, snapshots, checkpoints) that address one tenant.
func (st *TenantStream) Correlator() *StreamCorrelator { return st.sc }

// Store returns the tenant's durable store, nil when the set (or this
// tenant, after a degrade) runs RAM-only.
func (st *TenantStream) Store() *segio.Store { return st.store }

// Recovery returns what segio recovered from the tenant's store at
// creation — the dedup ids to seed the server's window with, the
// recovered-state counts for observability — or nil without a store.
func (st *TenantStream) Recovery() *segio.Recovery { return st.rec }

// Err returns the OpenStore or recovery error that degraded this tenant
// to RAM-only, or nil. Errors latching later, mid-stream, surface through
// Correlator().DurabilityErr as before.
func (st *TenantStream) Err() error { return st.err }

// Publish feeds spans to the tenant's correlator under a worker slot,
// implementing trace.Collector — the tap target for a non-durable
// tenant.
func (st *TenantStream) Publish(spans ...*trace.Span) {
	st.set.sem <- struct{}{}
	defer func() { <-st.set.sem }()
	st.sc.Feed(spans...)
}

// IngestLogged feeds one batch through the tenant's durability barrier
// under a worker slot, implementing trace.DurableSink.
func (st *TenantStream) IngestLogged(batchID uint64, spans []*trace.Span) error {
	st.set.sem <- struct{}{}
	defer func() { <-st.set.sem }()
	return st.sc.FeedLogged(batchID, spans...)
}

// Pressure reports the tenant correlator's admission pressure,
// implementing trace.LoadReporter. No worker slot: the signal must stay
// readable while every slot is busy feeding.
func (st *TenantStream) Pressure() trace.Pressure { return st.sc.Pressure() }
