package core_test

import (
	"fmt"
	"testing"

	"xsp/internal/core"
	"xsp/internal/segio"
	"xsp/internal/trace"
	"xsp/internal/vclock"
	"xsp/internal/workload"
)

// BenchmarkCheckpointDurable prices the durability upgrade on real files.
// One op is a whole 50k-span checkpointing stream:
//
//   - ram: the baseline — Feed with Retain folding into RAM segments,
//     no store, nothing survives the process;
//   - durable: the same stream over a segio.DirFS store — every batch
//     FeedLogged (WAL append + fsync before the ack), every fold spilled
//     to a checksummed segment file. The delta against ram is the whole
//     cost of crash safety at this batch size;
//   - recover: segio.Open + core.RecoverStream against the files a
//     durable run left behind, at growing stream lengths. Geometric
//     compaction keeps the ladder logarithmic, so the segment count
//     barely moves while recovered bytes grow with history — recovery
//     cost must track the data, not ladder depth.
func BenchmarkCheckpointDurable(b *testing.B) {
	const n = 50_000
	const batchSize = 1_000
	const retain = vclock.Duration(4_096)
	mkBatches := func(spans int) [][]*trace.Span {
		return workload.StreamingArrivals(workload.StreamingSpec{
			Trace:     workload.SyntheticSpec{Spans: spans, Seed: 42},
			BatchSize: batchSize, ReorderSkew: 48, Seed: 42,
		})
	}
	resetParents := func(batches [][]*trace.Span) {
		for _, batch := range batches {
			for _, s := range batch {
				s.ParentID = 0
			}
		}
	}
	// feedDurable streams batches through a fresh DirFS store rooted at
	// dir and returns the closed store's file stats.
	feedDurable := func(tb testing.TB, dir string, batches [][]*trace.Span) segio.Stats {
		fs, err := segio.DirFS(dir)
		if err != nil {
			tb.Fatalf("dir fs: %v", err)
		}
		st, rec, err := segio.Open(fs, segio.Options{})
		if err != nil {
			tb.Fatalf("open store: %v", err)
		}
		sc, err := core.RecoverStream(core.StreamOptions{
			ReorderWindow: 48, Retain: retain, Store: st,
		}, rec)
		if err != nil {
			tb.Fatalf("recover empty store: %v", err)
		}
		for i, batch := range batches {
			if err := sc.FeedLogged(uint64(i+1), batch...); err != nil {
				tb.Fatalf("batch %d refused: %v", i+1, err)
			}
		}
		sc.Flush()
		if err := sc.DurabilityErr(); err != nil {
			tb.Fatalf("durability error on a healthy disk: %v", err)
		}
		stats := st.Stats()
		if err := st.Close(); err != nil {
			tb.Fatalf("close store: %v", err)
		}
		return stats
	}

	b.Run("ram/50k", func(b *testing.B) {
		batches := mkBatches(n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			resetParents(batches)
			sc := core.NewStreamCorrelator(core.StreamOptions{ReorderWindow: 48, Retain: retain})
			b.StartTimer()
			for _, batch := range batches {
				sc.Feed(batch...)
			}
			sc.Flush()
		}
	})
	b.Run("durable/50k", func(b *testing.B) {
		batches := mkBatches(n)
		b.ReportAllocs()
		var stats segio.Stats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			resetParents(batches)
			dir := b.TempDir() // fresh store every op: each run pays the full write path
			b.StartTimer()
			stats = feedDurable(b, dir, batches)
		}
		b.ReportMetric(float64(stats.Segments), "segments")
		b.ReportMetric(float64(stats.SegmentBytes+stats.WALBytes)/1024, "KiB-on-disk")
	})

	for _, size := range []int{12_500, 25_000, 50_000} {
		size := size
		b.Run(fmt.Sprintf("recover/%dk-spans", size/1000), func(b *testing.B) {
			batches := mkBatches(size)
			resetParents(batches)
			stored := 0 // the generator rounds Spans down to whole trace shapes
			for _, batch := range batches {
				stored += len(batch)
			}
			dir := b.TempDir()
			stats := feedDurable(b, dir, batches)
			fs, err := segio.DirFS(dir)
			if err != nil {
				b.Fatalf("dir fs: %v", err)
			}
			b.ReportAllocs()
			var recovered int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, rec, err := segio.Open(fs, segio.Options{})
				if err != nil {
					b.Fatalf("open store: %v", err)
				}
				if len(rec.Quarantined) != 0 {
					b.Fatalf("clean files quarantined: %v", rec.Quarantined)
				}
				sc, err := core.RecoverStream(core.StreamOptions{
					ReorderWindow: 48, Retain: retain, Store: st,
				}, rec)
				if err != nil {
					b.Fatalf("recover: %v", err)
				}
				b.StopTimer()
				// Conservation holds after Flush: the replayed WAL tail sits
				// in the reorder buffer until then, and spans a fold already
				// moved to a segment can transiently coexist with their WAL
				// batch copies there.
				sc.Flush()
				st2 := sc.Stats()
				recovered = st2.Live + st2.Checkpointed
				if recovered != stored {
					b.Fatalf("recovered %d spans, stored %d", recovered, stored)
				}
				if err := st.Close(); err != nil {
					b.Fatalf("close store: %v", err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(stats.Segments), "segments")
			b.ReportMetric(float64(recovered), "recovered-spans")
		})
	}
}
