package core

import (
	"strings"
	"testing"

	"xsp/internal/cupti"
	"xsp/internal/trace"
)

// The paper's extensibility example (Section III-E): an ML-library tracer
// between the layer and GPU kernel levels. Library-call spans must nest
// under their layer spans, and kernel launches must nest under the library
// calls — a four-deep hierarchy.
func TestLibraryLevelProfile(t *testing.T) {
	s := newSession()
	res, err := s.Profile(resnetGraph(t, 4), Options{Levels: MLLG, GPUMetrics: cupti.StandardMetrics})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace

	libSpans := tr.ByLevel(trace.LevelLibrary)
	if len(libSpans) < 100 {
		t.Fatalf("library spans = %d, want one per kernel-launching layer", len(libSpans))
	}

	// Every library span's parent is a layer span.
	names := map[string]bool{}
	for _, lib := range libSpans {
		p := tr.ByID(lib.ParentID)
		if p == nil || p.Level != trace.LevelLayer {
			t.Fatalf("library span %q parent = %+v, want a layer", lib.Name, p)
		}
		names[lib.Name] = true
	}
	for _, want := range []string{"cudnnConvolutionForward", "cublasSgemm", "cudnnPoolingForward", "launchElementwise"} {
		if !names[want] {
			t.Errorf("missing library call %q in trace", want)
		}
	}

	// Kernel launch spans nest under the library spans; layer
	// attribution still works through the extra level.
	launchUnderLib := 0
	for _, sp := range tr.Spans {
		if sp.Kind == trace.KindLaunch && sp.Name == "cudaLaunchKernel" {
			if p := tr.ByID(sp.ParentID); p != nil && p.Level == trace.LevelLibrary {
				launchUnderLib++
			}
		}
	}
	if launchUnderLib < 100 {
		t.Fatalf("only %d launches parented to library calls", launchUnderLib)
	}
}

func TestLibraryLevelKeepsKernelAttribution(t *testing.T) {
	s := newSession()
	res, err := s.Profile(resnetGraph(t, 64), Options{Levels: MLLG})
	if err != nil {
		t.Fatal(err)
	}
	// Reuse the analysis attribution logic indirectly: every conv kernel
	// exec span must reach a Conv2D layer by walking parents.
	tr := res.Trace
	byID := map[uint64]*trace.Span{}
	for _, sp := range tr.Spans {
		byID[sp.ID] = sp
	}
	checked := 0
	for _, sp := range tr.Spans {
		if sp.Kind != trace.KindExec || !strings.Contains(sp.Name, "scudnn") {
			continue
		}
		cur := byID[sp.ParentID]
		for cur != nil && cur.Level != trace.LevelLayer {
			cur = byID[cur.ParentID]
		}
		if cur == nil || cur.Tag("layer_type") != "Conv2D" {
			t.Fatalf("scudnn kernel not attributed to a Conv2D layer (got %+v)", cur)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no scudnn kernels found")
	}
}

func TestLevelSetStringWithLibrary(t *testing.T) {
	if got := MLLG.String(); got != "M/L/Lib/G" {
		t.Fatalf("MLLG = %q", got)
	}
}
