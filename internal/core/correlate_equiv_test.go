package core

import (
	"math/rand"
	"testing"

	"xsp/internal/trace"
	"xsp/internal/vclock"
)

// randomTrace generates a randomized multi-level trace. Shapes:
//
//	"nested"     — serialized layers, kernels inside them (sweep-eligible)
//	"pipelined"  — two interleaved layer timelines whose spans cross
//	"deviceonly" — nested, but without launch spans, so every exec span
//	               needs the pass-2 containment fallback
func randomTrace(rng *rand.Rand, shape string) *trace.Trace {
	streams := 1
	if shape == "pipelined" {
		streams = 2
	}
	var spans []*trace.Span
	var nextID uint64
	id := func() uint64 { nextID++; return nextID }

	model := &trace.Span{ID: id(), Level: trace.LevelModel, Name: "model_prediction"}
	spans = append(spans, model)
	var end vclock.Time
	corr := uint64(0)
	for st := 0; st < streams; st++ {
		cursor := vclock.Time(st * (3 + rng.Intn(10)))
		for li := 0; li < 2+rng.Intn(6); li++ {
			layer := &trace.Span{ID: id(), Level: trace.LevelLayer, Name: "layer", Begin: cursor}
			inner := cursor + 1
			for k := 0; k < rng.Intn(5); k++ {
				corr++
				dur := vclock.Time(1 + rng.Intn(30))
				if shape != "deviceonly" {
					spans = append(spans, &trace.Span{
						ID: id(), Level: trace.LevelKernel,
						Kind: trace.KindLaunch, Name: "cudaLaunchKernel",
						Begin: inner, End: inner + 2, CorrelationID: corr,
					})
				}
				exec := &trace.Span{
					ID: id(), Level: trace.LevelKernel,
					Kind: trace.KindExec, Name: "kernel",
					Begin: inner + 2, End: inner + 2 + dur, CorrelationID: corr,
				}
				spans = append(spans, exec)
				inner = exec.End + 1
			}
			layer.End = inner + 1
			spans = append(spans, layer)
			cursor = layer.End + vclock.Time(rng.Intn(4)) - 1 // occasional touching layers
			if cursor < layer.End {
				cursor = layer.End
			}
		}
		if cursor > end {
			end = cursor
		}
	}
	model.Begin = 0
	model.End = end + 1
	return &trace.Trace{Spans: spans}
}

func cloneTrace(tr *trace.Trace) *trace.Trace {
	out := &trace.Trace{Spans: make([]*trace.Span, len(tr.Spans))}
	for i, s := range tr.Spans {
		out.Spans[i] = s.Clone()
	}
	return out
}

// Property: the sweep-line and interval-tree paths assign identical
// parents, on every shape the generator produces — including the
// pipelined traces the auto strategy would route to the tree.
func TestSweepMatchesTreeOnRandomTraces(t *testing.T) {
	for _, shape := range []string{"nested", "pipelined", "deviceonly"} {
		t.Run(shape, func(t *testing.T) {
			for seed := int64(0); seed < 40; seed++ {
				base := randomTrace(rand.New(rand.NewSource(seed)), shape)
				bySweep := cloneTrace(base)
				byTree := cloneTrace(base)
				CorrelateWith(bySweep, StrategySweep)
				CorrelateWith(byTree, StrategyTree)
				for i := range base.Spans {
					s, tt := bySweep.Spans[i], byTree.Spans[i]
					if s.ParentID != tt.ParentID {
						t.Fatalf("seed %d: span %d (%s %s [%d,%d)): sweep parent %d, tree parent %d",
							seed, s.ID, s.Level, s.Kind, s.Begin, s.End, s.ParentID, tt.ParentID)
					}
				}
			}
		})
	}
}

// Property: the auto strategy is always equivalent to the tree path — it
// only takes the fast path when that is safe.
func TestAutoCorrelateMatchesTree(t *testing.T) {
	for _, shape := range []string{"nested", "pipelined", "deviceonly"} {
		for seed := int64(0); seed < 25; seed++ {
			base := randomTrace(rand.New(rand.NewSource(1000+seed)), shape)
			auto := cloneTrace(base)
			byTree := cloneTrace(base)
			Correlate(auto)
			CorrelateWith(byTree, StrategyTree)
			for i := range base.Spans {
				if auto.Spans[i].ParentID != byTree.Spans[i].ParentID {
					t.Fatalf("%s seed %d: span %d: auto parent %d, tree parent %d",
						shape, seed, auto.Spans[i].ID, auto.Spans[i].ParentID, byTree.Spans[i].ParentID)
				}
			}
		}
	}
}

func TestSweepEligibility(t *testing.T) {
	mk := func(shape string, seed int64) *trace.Trace {
		return randomTrace(rand.New(rand.NewSource(seed)), shape)
	}
	for seed := int64(0); seed < 20; seed++ {
		tr := mk("nested", seed)
		if !sweepEligible(tr, tr.Levels()) {
			t.Fatalf("nested seed %d: serialized trace should take the sweep fast path", seed)
		}
	}
	crossed := 0
	for seed := int64(0); seed < 20; seed++ {
		tr := mk("pipelined", seed)
		if !sweepEligible(tr, tr.Levels()) {
			crossed++
		}
	}
	if crossed == 0 {
		t.Fatal("no pipelined trace fell back to the interval tree; the generator no longer crosses layers")
	}

	// Duplicate intervals at a parent-capable level force the fallback:
	// the smallest container would be ambiguous.
	dup := &trace.Trace{Spans: []*trace.Span{
		{ID: 1, Level: trace.LevelModel, Begin: 0, End: 100},
		{ID: 2, Level: trace.LevelLayer, Begin: 10, End: 50},
		{ID: 3, Level: trace.LevelLayer, Begin: 10, End: 50},
		{ID: 4, Level: trace.LevelKernel, Kind: trace.KindExec, Begin: 20, End: 30},
	}}
	if sweepEligible(dup, dup.Levels()) {
		t.Fatal("duplicate layer intervals must not be sweep-eligible")
	}

	// A crossing overlap at the layer level forces the fallback too (the
	// kernel span below makes the layer level parent-capable; without it
	// the layer level is deepest and its overlaps would be harmless).
	cross := &trace.Trace{Spans: []*trace.Span{
		{ID: 1, Level: trace.LevelModel, Begin: 0, End: 100},
		{ID: 2, Level: trace.LevelLayer, Begin: 10, End: 50},
		{ID: 3, Level: trace.LevelLayer, Begin: 30, End: 80},
		{ID: 4, Level: trace.LevelKernel, Kind: trace.KindExec, Begin: 35, End: 45},
	}}
	if sweepEligible(cross, cross.Levels()) {
		t.Fatal("crossing layer spans must not be sweep-eligible")
	}

	// Crossings at the deepest level are harmless: no span queries it.
	deep := &trace.Trace{Spans: []*trace.Span{
		{ID: 1, Level: trace.LevelModel, Begin: 0, End: 100},
		{ID: 2, Level: trace.LevelLayer, Begin: 5, End: 60},
		{ID: 3, Level: trace.LevelKernel, Kind: trace.KindExec, Begin: 10, End: 30},
		{ID: 4, Level: trace.LevelKernel, Kind: trace.KindExec, Begin: 20, End: 40},
	}}
	if !sweepEligible(deep, deep.Levels()) {
		t.Fatal("kernel-level overlap alone should stay on the sweep fast path")
	}
}

// The property tests above compare paths; this pins concrete semantics:
// an exec span crossing its layer's end resolves through its launch span's
// correlation id, not containment, on both paths.
func TestSweepResolvesPipelinedExecViaCorrelation(t *testing.T) {
	for _, strat := range []Strategy{StrategySweep, StrategyTree} {
		tr := &trace.Trace{Spans: []*trace.Span{
			{ID: 1, Level: trace.LevelModel, Begin: 0, End: 200},
			{ID: 2, Level: trace.LevelLayer, Begin: 10, End: 50},
			{ID: 3, Level: trace.LevelLayer, Begin: 50, End: 90},
			// Launched inside layer 2, executing into layer 3's window.
			{ID: 4, Level: trace.LevelKernel, Kind: trace.KindLaunch, Name: "cudaLaunchKernel", Begin: 12, End: 14, CorrelationID: 9},
			{ID: 5, Level: trace.LevelKernel, Kind: trace.KindExec, Name: "kernel", Begin: 40, End: 70, CorrelationID: 9},
		}}
		CorrelateWith(tr, strat)
		if got := tr.ByID(4).ParentID; got != 2 {
			t.Fatalf("%v: launch parent = %d, want layer 2", strat, got)
		}
		if got := tr.ByID(5).ParentID; got != 2 {
			t.Fatalf("%v: exec crossing layers must inherit launch parent 2, got %d", strat, got)
		}
		if got := tr.ByID(2).ParentID; got != 1 {
			t.Fatalf("%v: layer parent = %d, want model 1", strat, got)
		}
	}
}
