package core_test

// The benchmarks live in an external test package so they can consume the
// synthetic generator (internal/workload imports internal/core).

import (
	"fmt"
	"testing"

	"xsp/internal/core"
	"xsp/internal/workload"
)

var benchSizes = []int{10_000, 100_000, 1_000_000}

// BenchmarkCorrelate measures parent reconstruction on serialized
// synthetic traces, on the sweep-line fast path and the interval-tree
// fallback. The acceptance target is the sweep being ≥5x faster at 100k
// spans.
func BenchmarkCorrelate(b *testing.B) {
	for _, strat := range []core.Strategy{core.StrategySweep, core.StrategyTree} {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("%v/%s", strat, sizeName(n)), func(b *testing.B) {
				benchCorrelate(b, n, workload.SyntheticSpec{Spans: n, Seed: 42}, strat)
			})
		}
	}
	// The pipelined shape exercises the auto strategy's fallback
	// detection plus tree correlation on an overlap-heavy trace.
	b.Run("auto/pipelined/100k", func(b *testing.B) {
		benchCorrelate(b, 100_000, workload.SyntheticSpec{Spans: 100_000, Streams: 2, Seed: 42}, core.StrategyAuto)
	})
}

func benchCorrelate(b *testing.B, n int, spec workload.SyntheticSpec, strat core.Strategy) {
	tr := workload.SyntheticTrace(spec)
	// Traces reach Correlate through the tracing server, which sorts them
	// (Memory.Trace calls SortByBegin); measure from that state.
	tr.SortByBegin()
	parents := make([]uint64, len(tr.Spans))
	for i, s := range tr.Spans {
		parents[i] = s.ParentID
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j, s := range tr.Spans {
			s.ParentID = parents[j]
		}
		b.StartTimer()
		core.CorrelateWith(tr, strat)
	}
}

func sizeName(n int) string {
	if n >= 1_000_000 {
		return fmt.Sprintf("%dM", n/1_000_000)
	}
	return fmt.Sprintf("%dk", n/1_000)
}

// Sanity for the benchmark harness itself: both strategies fully resolve
// the synthetic trace (every kernel attributed to a layer).
func TestSyntheticTraceCorrelates(t *testing.T) {
	for _, strat := range []core.Strategy{core.StrategySweep, core.StrategyTree} {
		tr := workload.SyntheticTrace(workload.SyntheticSpec{Spans: 2_000, Seed: 7})
		core.CorrelateWith(tr, strat)
		if core.Ambiguous(tr) {
			t.Fatalf("%v: serialized synthetic trace left ambiguous kernels", strat)
		}
		for _, s := range tr.Spans[1:] {
			if s.ParentID == 0 {
				t.Fatalf("%v: span %d (%s) has no parent", strat, s.ID, s.Level)
			}
		}
	}
}
