package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"xsp/internal/cuda"
	"xsp/internal/cupti"
	"xsp/internal/framework"
	"xsp/internal/gpu"
	"xsp/internal/trace"
	"xsp/internal/vclock"
)

// LevelSet selects which stack levels to profile in one run, mirroring the
// paper's M / M/L / M/L/G notation. Library is the optional ML-library
// level between layers and GPU kernels (the paper's extensibility example:
// tracing cuDNN API calls).
type LevelSet struct {
	Model   bool
	Layer   bool
	Library bool
	GPU     bool
}

// Common level sets.
var (
	M    = LevelSet{Model: true}
	ML   = LevelSet{Model: true, Layer: true}
	MG   = LevelSet{Model: true, GPU: true}
	MLG  = LevelSet{Model: true, Layer: true, GPU: true}
	MLLG = LevelSet{Model: true, Layer: true, Library: true, GPU: true}
)

// String renders the paper's notation, e.g. "M/L/G". Sets that skip the
// model level join the remaining levels the same way ("L/G", not "/L/G").
func (l LevelSet) String() string {
	parts := make([]string, 0, 4)
	if l.Model {
		parts = append(parts, "M")
	}
	if l.Layer {
		parts = append(parts, "L")
	}
	if l.Library {
		parts = append(parts, "Lib")
	}
	if l.GPU {
		parts = append(parts, "G")
	}
	return strings.Join(parts, "/")
}

// Options configures a profiling run.
type Options struct {
	Levels LevelSet

	// GPUMetrics lists CUPTI hardware counters to collect at the GPU
	// level (forces kernel replay; see package cupti). Ignored unless
	// Levels.GPU.
	GPUMetrics []string

	// Pipelined keeps the framework's execution pipelined during layer
	// profiling instead of serializing at layer boundaries. Kernel
	// execution may then cross layer boundaries; XSP falls back to a
	// serialized re-run when parent reconstruction is ambiguous.
	Pipelined bool

	// ActivityOnly disables the CUPTI callback API, capturing kernel
	// executions without their launch records — the disjoint-profiler
	// situation of Section III-A where parents can only be recovered by
	// interval containment, and a serialized re-run is needed whenever
	// execution crosses layer boundaries.
	ActivityOnly bool

	// Collector receives the published spans; defaults to a fresh
	// in-memory tracing server per run. A caller-provided collector is
	// treated as shared: runs profile speculatively into a scratch
	// collector and publish into Collector exactly once — on promotion of
	// an unambiguous attempt, or directly during a serialized re-run — so
	// an abandoned first attempt never double-counts spans in it. On the
	// promoted path the returned Result.Trace covers just this run's
	// spans; a serialized re-run returns the collector's full view.
	Collector trace.Collector

	// Tap attaches an online consumer (e.g. a core.StreamCorrelator) to
	// the run's own collector via trace.Memory.SetTap: it receives every
	// span of the run exactly once, and never the spans of a speculative
	// attempt that a serialized re-run abandons. Only valid when Collector
	// is unset — a caller who owns the collector sets the tap on it
	// directly (and an Application run uses Application.SetTap).
	//
	// Ordering: the tap sees the run's original online publish order on
	// every path. A promoted speculative attempt replays its publishes
	// batch by batch in the order they happened (not as one
	// canonical-order batch at promotion time), so a streaming consumer
	// observes the same interleaving the serialized path produces.
	Tap trace.Collector
}

// Per-image host costs of the model-level pipeline steps surrounding
// prediction (decode/resize on the way in, argmax/format on the way out).
const (
	preprocessPerImage  = 120 * time.Microsecond
	postprocessPerImage = 20 * time.Microsecond
)

// Session profiles one model family on one system with one framework.
type Session struct {
	exec *framework.Executor
	spec gpu.Spec
}

// NewSession returns a profiling session for the executor/system pair.
func NewSession(exec *framework.Executor, spec gpu.Spec) *Session {
	return &Session{exec: exec, spec: spec}
}

// Spec returns the session's GPU system.
func (s *Session) Spec() gpu.Spec { return s.spec }

// Executor returns the session's framework executor.
func (s *Session) Executor() *framework.Executor { return s.exec }

// Result is the outcome of one profiled run.
type Result struct {
	Trace *trace.Trace
	// ModelSpan is the model-prediction span of this run (including any
	// profiling overhead active at the time).
	ModelSpan *trace.Span
	// Run is the framework's own view of the run.
	Run *framework.RunResult
	// Serialized reports whether XSP had to re-run with
	// CUDA_LAUNCH_BLOCKING-style serialization to disambiguate parents.
	Serialized bool
}

// env carries the shared profiling environment of a run: its clock,
// collector, and (for application-level profiling across several model
// predictions) the enclosing application span.
type env struct {
	clock     *vclock.Clock
	collector trace.Collector
	appRoot   *trace.Span
}

// Profile runs the model once at the requested levels and returns the
// aggregated, correlated trace.
func (s *Session) Profile(g *framework.Graph, opts Options) (*Result, error) {
	return s.profile(g, opts, nil)
}

func (s *Session) profile(g *framework.Graph, opts Options, e *env) (*Result, error) {
	if opts.Tap != nil {
		if e != nil || opts.Collector != nil {
			return nil, fmt.Errorf("core: Options.Tap requires the run's own collector; set the tap on the shared collector instead (trace.Memory.SetTap, Application.SetTap)")
		}
		// The tap rides a run-owned Memory, wrapped in an env below so the
		// speculative first attempt stays out of it.
		m := trace.NewMemory()
		m.SetTap(opts.Tap)
		e = &env{clock: vclock.New(0), collector: m}
	} else if e == nil && opts.Collector != nil {
		// A caller-provided collector outlives the attempt exactly like an
		// application's shared collector does, so it takes the same
		// speculate-and-promote path — publishing the first attempt
		// directly and then re-running serialized would double-count every
		// span of the abandoned attempt in it. One clock spans both
		// attempts, keeping the shared timeline monotonic.
		e = &env{clock: vclock.New(0), collector: opts.Collector}
	}
	first := e
	if e != nil {
		// The collector is shared across runs (or tapped), so the first
		// attempt — speculative until Ambiguous clears it — profiles into
		// a scratch collector. The attempt still runs on the shared clock
		// under the shared root (if any), so its spans drop into the
		// shared timeline unchanged if promoted. The scratch collector
		// journals its publishes so promotion can replay them in order.
		first = &env{clock: e.clock, collector: newReplayCollector(), appRoot: e.appRoot}
	}
	res, err := s.profileOnce(g, opts, false, first)
	if err != nil {
		return nil, err
	}
	if !Ambiguous(res.Trace) {
		if e != nil {
			// Promote the attempt: its spans (parents already resolved by
			// Correlate, in place) move into the shared collector — and
			// through it to any tap — exactly once, replayed batch by
			// batch in the original online publish order rather than as
			// one canonical-order batch, so a streaming consumer behind
			// the tap sees the same interleaving a serialized run
			// produces.
			first.collector.(*replayCollector).replayInto(e.collector)
		}
		return res, nil
	}
	// Parallel events made some parents ambiguous: re-run serialized
	// (the paper sets CUDA_LAUNCH_BLOCKING=1; no application changes).
	// The abandoned attempt's spans stay behind in the scratch collector.
	res, err = s.profileOnce(g, opts, true, e)
	if err != nil {
		return nil, err
	}
	res.Serialized = true
	return res, nil
}

func (s *Session) profileOnce(g *framework.Graph, opts Options, serialize bool, e *env) (*Result, error) {
	if !opts.Levels.Model {
		return nil, fmt.Errorf("core: model-level profiling cannot be disabled (it anchors the trace)")
	}
	var clock *vclock.Clock
	collector := opts.Collector
	if e != nil {
		clock = e.clock
		collector = e.collector
	} else {
		clock = vclock.New(0)
	}
	if collector == nil {
		collector = trace.NewMemory()
	}
	dev := gpu.NewDevice(s.spec)
	ctx := cuda.NewContext(dev, clock)
	if serialize {
		ctx.LaunchBlocking = true
	}

	// GPU-level tracer: a CUPTI session attached to the CUDA context.
	var cu *cupti.CUPTI
	if opts.Levels.GPU {
		var err error
		cu, err = cupti.New(cupti.Config{
			Callback: !opts.ActivityOnly,
			Activity: true,
			Metrics:  opts.GPUMetrics,
		})
		if err != nil {
			return nil, err
		}
		ctx.Attach(cu)
	}

	// Per-run tracers get dedicated collector shards; Close releases the
	// shards so repeated runs into a long-lived collector (Application)
	// do not accumulate them.
	modelTracer := trace.NewTracer("xsp-model", trace.LevelModel, collector)
	defer modelTracer.Close()
	appTracer := trace.NewTracer("xsp-app", trace.LevelApplication, collector)
	defer appTracer.Close()

	batch := float64(g.BatchSize())

	// Model-level pipeline: pre-process -> predict -> post-process, with
	// the tracing API placed around each step (two lines per step, as
	// the paper advertises). Inside an application context the enclosing
	// application span is the root; otherwise each run gets its own.
	var root *trace.Span
	ownRoot := e == nil || e.appRoot == nil
	if ownRoot {
		root = appTracer.StartSpan("evaluate", clock.Now())
	} else {
		root = e.appRoot
	}

	pre := modelTracer.StartSpan("input_preprocess", clock.Now())
	clock.Advance(time.Duration(batch * float64(preprocessPerImage)))
	modelTracer.FinishSpan(pre, clock.Now())

	predict := modelTracer.StartSpan("model_prediction", clock.Now())
	run, err := s.exec.Run(g, ctx, framework.RunOptions{
		LayerProfiling:   opts.Levels.Layer,
		LibraryProfiling: opts.Levels.Library,
		NoSerialize:      opts.Pipelined && !serialize,
	})
	if err != nil {
		return nil, err
	}
	modelTracer.FinishSpan(predict, clock.Now())

	post := modelTracer.StartSpan("output_postprocess", clock.Now())
	clock.Advance(time.Duration(batch * float64(postprocessPerImage)))
	modelTracer.FinishSpan(post, clock.Now())

	if ownRoot {
		appTracer.FinishSpan(root, clock.Now())
	}
	pre.ParentID = root.ID
	predict.ParentID = root.ID
	post.ParentID = root.ID

	// Layer-level tracer: convert the framework profiler's output
	// offline (adds no overhead beyond the profiler's own). Layer spans
	// are direct children of the prediction span.
	layerTracer := trace.NewTracer(s.exec.Name()+"-profiler", trace.LevelLayer, collector)
	defer layerTracer.Close()
	if opts.Levels.Layer {
		for _, lr := range run.Layers {
			sp := &trace.Span{
				ID:       trace.NewSpanID(),
				ParentID: predict.ID,
				Level:    trace.LevelLayer,
				Name:     lr.Name,
				Source:   layerTracer.Source(),
				Begin:    lr.Begin,
				End:      lr.End,
			}
			sp.SetTag("layer_index", fmt.Sprint(lr.Index))
			sp.SetTag("layer_type", string(lr.Type))
			sp.SetTag("layer_shape", lr.Shape.String())
			sp.SetMetric("alloc_bytes", float64(lr.AllocBytes))
			layerTracer.PublishCompleted(sp)
		}
	}

	// Library-level tracer: the ML-library API calls each layer made,
	// converted offline like the layer records. Their parents are left
	// to interval-tree reconstruction, as a third-party library tracer
	// would not share identifiers with the framework profiler.
	if opts.Levels.Library {
		libTracer := trace.NewTracer("cudnn-api", trace.LevelLibrary, collector)
		defer libTracer.Close()
		for _, lc := range run.LibCalls {
			sp := &trace.Span{
				ID:     trace.NewSpanID(),
				Level:  trace.LevelLibrary,
				Name:   lc.Name,
				Source: libTracer.Source(),
				Begin:  lc.Begin,
				End:    lc.End,
			}
			sp.SetTag("layer_index", fmt.Sprint(lc.LayerIndex))
			libTracer.PublishCompleted(sp)
		}
	}

	// GPU-level tracer: CUPTI records become launch + execution spans.
	gpuTracer := trace.NewTracer("cupti", trace.LevelKernel, collector)
	defer gpuTracer.Close()
	if opts.Levels.GPU {
		for _, api := range cu.APIRecords() {
			sp := &trace.Span{
				ID:            trace.NewSpanID(),
				Level:         trace.LevelKernel,
				Kind:          trace.KindLaunch,
				Name:          api.Name,
				Source:        gpuTracer.Source(),
				Begin:         api.Begin,
				End:           api.End,
				CorrelationID: api.CorrelationID,
			}
			gpuTracer.PublishCompleted(sp)
		}
		for _, kr := range cu.KernelRecords() {
			sp := &trace.Span{
				ID:            trace.NewSpanID(),
				Level:         trace.LevelKernel,
				Kind:          trace.KindExec,
				Name:          kr.Kernel.Name,
				Source:        gpuTracer.Source(),
				Begin:         kr.Begin,
				End:           kr.End,
				CorrelationID: kr.CorrelationID,
			}
			sp.SetTag("grid", kr.Kernel.Grid.String())
			sp.SetTag("block", kr.Kernel.Block.String())
			sp.SetTag("stream", fmt.Sprint(kr.Stream))
			// Without metric collection CUPTI still knows the kernel
			// identity; metrics are attached only when requested.
			for name, v := range cu.Metrics(kr) {
				sp.SetMetric(name, v)
			}
			gpuTracer.PublishCompleted(sp)
		}
		for _, mr := range cu.MemcpyRecords() {
			sp := &trace.Span{
				ID:            trace.NewSpanID(),
				Level:         trace.LevelKernel,
				Kind:          trace.KindExec,
				Name:          "Memcpy" + mr.Direction,
				Source:        gpuTracer.Source(),
				Begin:         mr.Begin,
				End:           mr.End,
				CorrelationID: mr.CorrelationID,
			}
			sp.SetMetric("bytes", float64(mr.Bytes))
			gpuTracer.PublishCompleted(sp)
		}
	}

	src, ok := collector.(interface{ Trace() *trace.Trace })
	if !ok {
		return nil, fmt.Errorf("core: non-memory collectors require fetching the trace from the server")
	}
	tr := src.Trace()
	Correlate(tr)
	return &Result{Trace: tr, ModelSpan: predict, Run: run}, nil
}

// replayCollector is the scratch collector of a speculative attempt: a
// run-owned Memory plus a journal of every publish, in arrival order. On
// promotion the journal replays into the shared collector batch by batch,
// preserving the run's online publish order for any tap behind it; an
// abandoned attempt's journal is simply dropped with the scratch Memory.
type replayCollector struct {
	mem *trace.Memory

	mu      sync.Mutex
	batches [][]*trace.Span
}

func newReplayCollector() *replayCollector {
	return &replayCollector{mem: trace.NewMemory()}
}

// Publish journals the batch and lands it in the scratch Memory. The
// journal copies the batch slice (not the spans): a publisher may reuse
// its argument slice, but the span pointers must stay shared so Correlate
// resolutions on the scratch trace are visible after promotion.
func (rc *replayCollector) Publish(spans ...*trace.Span) {
	batch := make([]*trace.Span, len(spans))
	copy(batch, spans)
	rc.mu.Lock()
	rc.batches = append(rc.batches, batch)
	rc.mu.Unlock()
	rc.mem.Publish(spans...)
}

// Trace returns the scratch Memory's merged trace (profileOnce correlates
// through this).
func (rc *replayCollector) Trace() *trace.Trace { return rc.mem.Trace() }

// replayInto re-publishes the journaled batches into dst in their
// original order.
func (rc *replayCollector) replayInto(dst trace.Collector) {
	rc.mu.Lock()
	batches := rc.batches
	rc.batches = nil
	rc.mu.Unlock()
	for _, b := range batches {
		dst.Publish(b...)
	}
}
