package core

import (
	"errors"
	"slices"

	"xsp/internal/segio"
	"xsp/internal/trace"
	"xsp/internal/vclock"
)

// SegmentStore is the durability hook a StreamCorrelator writes through
// when StreamOptions.Store is set. *segio.Store satisfies it; the
// indirection keeps core testable against in-memory fakes and keeps the
// dependency one-way (segio never imports core).
//
// All calls happen under the correlator's mutex, which is what makes the
// crash story exact: a WAL rotation can never interleave with a batch
// append, so every logged batch is either fully covered by the rotated
// snapshot or fully present as a record in the new generation.
type SegmentStore interface {
	// LogBatch durably appends one fed batch (and its ingest batch id, 0
	// when none) to the WAL before the correlator consumes it.
	LogBatch(spans []*trace.Span, owned []uint64, batchID uint64) error
	// WriteSegment durably publishes one checkpoint segment, then deletes
	// the segment files it replaces.
	WriteSegment(spans []*trace.Span, owned []uint64, replaces []uint64) (uint64, error)
	// DropSegments deletes segment files a reopen pulled back into the
	// live tail (after a Rotate re-covered their spans).
	DropSegments(ids []uint64) error
	// Rotate replaces the WAL with a fresh generation holding snap.
	Rotate(snap segio.Snapshot) error
	// Reset wipes all durable state, mirroring StreamCorrelator.Reset.
	Reset() error
}

// FeedLogged is Feed for durable ingest paths that need an acknowledgment
// barrier: the batch (tagged with the server's dedup batch id) is
// appended and fsynced to the WAL before the correlator consumes it, and
// a nil return means the batch survives any crash — the caller may ack.
// On a log error nothing is consumed and the error is returned (and
// latched: see DurabilityErr); once latched, later calls degrade to
// RAM-only Feed and return nil, so ingest stays available while
// /api/durability surfaces the failure.
func (sc *StreamCorrelator) FeedLogged(batchID uint64, spans ...*trace.Span) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.opts.Store != nil && !sc.replaying && sc.durErr == nil {
		if err := sc.opts.Store.LogBatch(spans, nil, batchID); err != nil {
			sc.durErr = err
			return err
		}
	}
	sc.feedLocked(spans)
	return nil
}

// IngestLogged implements trace.DurableSink over FeedLogged, so a durable
// correlator can be handed to trace.Server.SetDurable directly.
func (sc *StreamCorrelator) IngestLogged(batchID uint64, spans []*trace.Span) error {
	return sc.FeedLogged(batchID, spans...)
}

// DurabilityErr returns the first store error the correlator hit, if
// any. After it latches, the correlator keeps running RAM-only (same
// behavior as Store == nil) rather than failing feeds.
func (sc *StreamCorrelator) DurabilityErr() error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.durErr
}

// logFeed appends one Feed batch to the WAL before it is consumed. Unlike
// FeedLogged there is no acknowledgment to withhold, so an error just
// latches (the stream continues RAM-only). Callers hold sc.mu.
func (sc *StreamCorrelator) logFeed(spans []*trace.Span) {
	if sc.opts.Store == nil || sc.replaying || sc.durErr != nil {
		return
	}
	if err := sc.opts.Store.LogBatch(spans, nil, 0); err != nil {
		sc.durErr = err
	}
}

// persistLadder writes a segment file for every checkpoint segment that
// does not have one yet — fresh folds and compaction survivors — handing
// each its own replaced-file list, so a crash between two writes can
// never have deleted an input whose merged survivor is not yet on disk.
// Callers hold sc.mu.
func (sc *StreamCorrelator) persistLadder() {
	if sc.opts.Store == nil || sc.replaying || sc.durErr != nil {
		return
	}
	for i := range sc.ckpt {
		seg := &sc.ckpt[i]
		if seg.fileID != 0 {
			continue
		}
		id, err := sc.opts.Store.WriteSegment(seg.spans, seg.owned, seg.replaced)
		if err != nil {
			sc.durErr = err
			return
		}
		seg.fileID = id
		seg.replaced = nil
	}
}

// rotateWAL trims the WAL: a fresh generation whose snapshot record
// covers the entire unfolded state (live tail, correlation table, release
// floor; the store adds the dedup-id window). Segment files a reopen
// pulled back live are deleted here and only here — the rotation is what
// makes their spans durable elsewhere. Callers hold sc.mu.
func (sc *StreamCorrelator) rotateWAL() {
	if sc.opts.Store == nil || sc.replaying || sc.durErr != nil {
		return
	}
	if err := sc.opts.Store.Rotate(sc.snapshotLocked()); err != nil {
		sc.durErr = err
		return
	}
	if len(sc.staleSegs) > 0 {
		if err := sc.opts.Store.DropSegments(sc.staleSegs); err != nil {
			sc.durErr = err
			return
		}
		sc.staleSegs = nil
	}
}

// snapshotLocked builds the WAL snapshot of everything not in a segment.
// The live tail is sc.all verbatim — a valid arrival order covering the
// reorder buffer, open windows, pending execs, and unrepaired stragglers
// alike — because recovery replays it through Feed and re-derives every
// owned parent; only non-owned (tracer-assigned) links are carried as
// data. Callers hold sc.mu.
func (sc *StreamCorrelator) snapshotLocked() segio.Snapshot {
	snap := segio.Snapshot{Live: sc.all}
	snap.Owned = make([]uint64, (len(sc.all)+63)/64)
	for i, s := range sc.all {
		if sc.owned[s] {
			snap.Owned[i/64] |= 1 << (i % 64)
		}
	}
	sc.corr.each(func(corr, parent uint64) {
		if parent == 0 {
			return // absent and zero-parent entries are indistinguishable to every reader
		}
		snap.Corr = append(snap.Corr, segio.CorrEntry{Corr: corr, Parent: parent, At: sc.corrAt[corr]})
	})
	slices.SortFunc(snap.Corr, func(a, b segio.CorrEntry) int {
		switch {
		case a.At != b.At:
			return int(a.At - b.At)
		case a.Corr < b.Corr:
			return -1
		case a.Corr > b.Corr:
			return 1
		}
		return 0
	})
	if f := sc.releaseFloor(); f != nil {
		snap.Floor = &segio.SpanKey{Begin: f.Begin, End: f.End, Level: f.Level, Kind: f.Kind, ID: f.ID}
	}
	return snap
}

// releaseFloor is the newest release point this correlator knows: its own
// lastReleased, or the floor recovered from a previous process if that
// compares later. Spans at or behind it are stragglers. Callers hold
// sc.mu.
func (sc *StreamCorrelator) releaseFloor() *trace.Span {
	f := sc.floor
	if sc.lastReleased != nil && (f == nil || compareEvents(sc.lastReleased, f) > 0) {
		f = sc.lastReleased
	}
	return f
}

// each visits every correlation-table entry.
func (ct *corrTable) each(fn func(corr, parent uint64)) {
	if ct.dense != nil {
		for i, p := range ct.dense {
			if p != 0 {
				fn(ct.min+uint64(i), p)
			}
		}
		return
	}
	for c, p := range ct.sparse {
		fn(c, p)
	}
}

// RecoverStream rebuilds a StreamCorrelator from what segio.Open
// recovered, attached to opts.Store for continued durability. Segments
// install directly as checkpoint segments; the WAL snapshot's live tail
// and the batch records after it replay through Feed in their original
// arrival order, with every correlator-derived parent stripped first so
// the resolver re-derives them — replay is just a resumed stream, which
// is what makes the recovered state provably equal to the uncrashed one.
// Span-id dedup across segments, snapshot, and batches (segments win)
// absorbs every crash-point overlap the store's write orderings can
// produce. On return the store has been rotated onto a fresh WAL covering
// the rebuilt state, so the recovery itself is crash-safe and appends are
// re-armed.
func RecoverStream(opts StreamOptions, rec *segio.Recovery) (*StreamCorrelator, error) {
	if opts.Store == nil {
		return nil, errors.New("core: RecoverStream requires StreamOptions.Store")
	}
	sc := NewStreamCorrelator(opts)

	// Span ids the WAL re-covers. A segment file whose spans all appear in
	// the WAL is stale and the WAL wins: either a reopen pulled it back
	// live and the crash interrupted deleting it — its settled parents
	// predate the straggler repair, only replay gets them right — or a
	// fold's rotation never became durable, in which case replaying the
	// records re-derives the very parents the segment froze. The file is
	// queued for deletion once the end-of-recovery rotation re-covers it.
	walSeen := make(map[uint64]bool)
	if rec.Snapshot != nil {
		for _, s := range rec.Snapshot.Live {
			if s != nil {
				walSeen[s.ID] = true
			}
		}
	}
	for _, b := range rec.Batches {
		for _, s := range b.Spans {
			if s != nil {
				walSeen[s.ID] = true
			}
		}
	}
	walCovered := func(spans []*trace.Span) bool {
		for _, s := range spans {
			if !walSeen[s.ID] {
				return false
			}
		}
		return len(spans) > 0
	}

	seen := make(map[uint64]bool)
	segCorr := make(map[uint64]uint64)
	for _, seg := range rec.Segments {
		if walCovered(seg.Spans) {
			sc.staleSegs = append(sc.staleSegs, seg.ID)
			continue
		}
		cs := ckptSegment{spans: seg.Spans, owned: seg.Owned, fileID: seg.ID}
		sc.ckpt = append(sc.ckpt, cs)
		sc.ckptSpans += len(seg.Spans)
		for _, s := range seg.Spans {
			seen[s.ID] = true
			sc.noteLevel(s.Level)
			if s.End > sc.ckptMaxEnd {
				sc.ckptMaxEnd = s.End
			}
			if s.Kind == trace.KindLaunch && s.CorrelationID != 0 && s.ParentID != 0 {
				// A folded launch's correlation entry always mirrors its
				// settled ParentID (a repair that moved it would have
				// destroyed the segment by reopening), so the entry can be
				// re-derived from the segment. It must be: a crash between a
				// fold's segment write and its WAL rotation leaves the only
				// durable snapshot predating the fold, and without the entry
				// a live exec replaying later would degrade to containment.
				segCorr[s.CorrelationID] = s.ParentID
			}
		}
	}
	for corr, parent := range segCorr {
		sc.corr.set(corr, parent)
		if opts.CorrRetain > 0 {
			if sc.corrAt == nil {
				sc.corrAt = make(map[uint64]vclock.Time)
			}
			sc.corrLog = append(sc.corrLog, corrRecord{corr: corr})
			sc.corrAt[corr] = 0
		}
	}

	snap := rec.Snapshot
	if snap != nil {
		for _, c := range snap.Corr {
			if c.Parent == 0 {
				continue
			}
			if _, ok := segCorr[c.Corr]; ok {
				// Segments are at least as new as the snapshot for any
				// launch they hold: keep the segment-derived entry.
				continue
			}
			sc.corr.set(c.Corr, c.Parent)
			if opts.CorrRetain > 0 {
				if sc.corrAt == nil {
					sc.corrAt = make(map[uint64]vclock.Time)
				}
				sc.corrLog = append(sc.corrLog, corrRecord{corr: c.Corr, at: c.At})
				sc.corrAt[c.Corr] = c.At
			}
		}
	}

	// An observer attached for recovery sees the whole stream again:
	// recovered segments never pass through the release path, so their
	// spans are delivered here — merged into one canonical order, which
	// keeps begins non-decreasing across segments — and the WAL replay
	// below re-releases the rest through the ordinary drain path.
	if opts.Observer != nil && len(sc.ckpt) > 0 {
		runs := make([][]*trace.Span, 0, len(sc.ckpt))
		for _, seg := range sc.ckpt {
			runs = append(runs, seg.spans)
		}
		for _, s := range trace.MergeRuns(runs) {
			opts.Observer.ObserveSpan(s)
		}
	}

	sc.replaying = true
	if snap != nil {
		sc.Feed(dedupStrip(snap.Live, snap.Owned, seen)...)
		if snap.Floor != nil {
			sc.installFloor(snap.Floor)
		}
	}
	for _, b := range rec.Batches {
		sc.Feed(dedupStrip(b.Spans, b.Owned, seen)...)
	}

	sc.mu.Lock()
	sc.replaying = false
	// Persist whatever shape replay left the ladder in (compactions merge
	// recovered segments; their inputs land on each survivor's replaced
	// list) and rotate onto a fresh WAL — which re-arms appends and drops
	// any files a replay-time reopen pulled back into the live tail.
	sc.persistLadder()
	sc.rotateWAL()
	err := sc.durErr
	sc.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return sc, nil
}

// dedupStrip prepares recovered spans for replay: spans whose id a
// segment (or an earlier replayed record) already carries are dropped —
// segments win — and correlator-owned spans lose their derived ParentID
// so the resolver re-derives it.
func dedupStrip(spans []*trace.Span, owned []uint64, seen map[uint64]bool) []*trace.Span {
	out := make([]*trace.Span, 0, len(spans))
	for i, s := range spans {
		if s == nil || seen[s.ID] {
			continue
		}
		seen[s.ID] = true
		if ownedBitSet(owned, i) {
			s.ParentID = 0
		}
		out = append(out, s)
	}
	return out
}

func ownedBitSet(owned []uint64, i int) bool {
	return i/64 < len(owned) && owned[i/64]&(1<<(i%64)) != 0
}

// installFloor adopts a recovered release floor — the crashed process's
// release point — unless replay has already released past it. It must be
// installed after the snapshot's own spans replayed: they released before
// the floor existed originally and must not classify as stragglers.
func (sc *StreamCorrelator) installFloor(k *segio.SpanKey) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	f := &trace.Span{ID: k.ID, Level: k.Level, Kind: k.Kind, Begin: k.Begin, End: k.End}
	if sc.lastReleased == nil || compareEvents(f, sc.lastReleased) > 0 {
		sc.floor = f
	}
}
