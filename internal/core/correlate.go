package core

import (
	"runtime"
	"slices"
	"strings"
	"sync"

	"xsp/internal/interval"
	"xsp/internal/trace"
	"xsp/internal/vclock"
)

// Strategy selects how Correlate reconstructs span parents.
type Strategy int

const (
	// StrategyAuto uses the sweep-line fast path when every parent-capable
	// level is properly nested (the serialized case the paper's profilers
	// produce) and falls back to the interval trees otherwise.
	StrategyAuto Strategy = iota
	// StrategySweep forces the single-sort sweep-line path.
	StrategySweep
	// StrategyTree forces the per-level interval-tree path.
	StrategyTree
)

// String returns the strategy name used in benchmarks and test output.
func (s Strategy) String() string {
	switch s {
	case StrategySweep:
		return "sweep"
	case StrategyTree:
		return "tree"
	default:
		return "auto"
	}
}

// Correlate reconstructs the parent-child relationships that the disjoint
// profilers could not record (Section III-A of the paper). Spans that
// already carry a parent reference keep it. For the rest:
//
//   - a launch span's parent is the smallest span at the nearest enabled
//     level above that fully contains it;
//   - an execution span's parent is its launch span's parent, resolved
//     through the shared correlation_id — execution happens later on the
//     device, so containment in the launching layer cannot be assumed.
//
// Containment lookups run on a sort-once sweep-line over (Begin, level)
// with an active-ancestor stack per level; overlap-heavy traces (e.g.
// pipelined layers on concurrent streams) fall back to per-level interval
// trees, built concurrently. Both paths assign identical parents.
func Correlate(tr *trace.Trace) { CorrelateWith(tr, StrategyAuto) }

// CorrelateWith is Correlate with an explicit strategy, so the sweep-line
// and interval-tree paths can be exercised and benchmarked independently.
func CorrelateWith(tr *trace.Trace, st Strategy) {
	// Levels and (on the tree path) ByLevel come straight from the trace's
	// incrementally maintained index: when the trace grew by appends since
	// the last correlation, the index extends with just the tail, and the
	// closing InvalidateChildren below keeps everything but the adjacency,
	// so repeated correlate-as-you-ingest rounds never rebuild these views.
	levels := tr.Levels()
	if len(levels) == 0 {
		return
	}
	switch st {
	case StrategySweep:
		correlateSweep(tr, levels, sortedEvents(tr))
	case StrategyTree:
		correlateTree(tr, levels)
	default:
		events := sortedEvents(tr)
		if eventsEligible(events, levels) {
			correlateSweep(tr, levels, events)
		} else {
			correlateTree(tr, levels)
		}
	}
	// Only ParentID links changed in place: drop just the children
	// adjacency and keep the per-level, ID, name, and correlation indexes.
	tr.InvalidateChildren()
}

// compareEvents is the sweep order shared by the batch sort and the
// stream correlator's reorder buffer: begin ascending, outer levels first
// on ties so parents are pushed before their children are queried, then
// longer spans first so same-begin containers nest, then span ID.
func compareEvents(a, b *trace.Span) int {
	switch {
	case a.Begin != b.Begin:
		if a.Begin < b.Begin {
			return -1
		}
		return 1
	case a.Level != b.Level:
		if a.Level < b.Level {
			return -1
		}
		return 1
	case a.End != b.End:
		if a.End > b.End {
			return -1
		}
		return 1
	case a.ID != b.ID:
		if a.ID < b.ID {
			return -1
		}
		return 1
	default:
		return 0
	}
}

// sortedEvents returns the spans in sweep order (compareEvents).
func sortedEvents(tr *trace.Trace) []*trace.Span {
	events := make([]*trace.Span, len(tr.Spans))
	copy(events, tr.Spans)
	slices.SortFunc(events, compareEvents)
	return events
}

// sweepEligible reports whether the sweep-line path should serve this
// trace. Exposed for tests; the auto path uses eventsEligible directly to
// reuse its sorted event slice.
func sweepEligible(tr *trace.Trace, levels []trace.Level) bool {
	return eventsEligible(sortedEvents(tr), levels)
}

// eventsEligible scans every parent-capable level (all but the deepest —
// the deepest level is never queried for parents) and rejects:
//
//   - crossing overlaps (a span extending past an earlier span's end
//     without containing it): pipelined execution keeps such spans active
//     together, degrading the ancestor stacks toward O(n) scans;
//   - duplicate intervals (two spans with identical bounds): the smallest
//     container is then ambiguous and the tree path's tie-break, which
//     depends on insertion order, must be preserved exactly.
func eventsEligible(events []*trace.Span, levels []trace.Level) bool {
	if len(levels) < 2 {
		return true
	}
	deepest := levels[len(levels)-1]
	var stacks levelStacks
	for _, s := range events {
		if s.Level == deepest {
			continue
		}
		st := stacks.slot(s.Level)
		popDead(st, s.Begin)
		if stack := *st; len(stack) > 0 && stackConflict(stack[len(stack)-1], s) {
			return false
		}
		*st = append(*st, s)
	}
	return true
}

// stackConflict reports whether pushing s onto a stack whose live top is
// top would break the sweep-line invariants the fast path depends on:
//
//   - a duplicate interval (identical bounds) makes the smallest container
//     ambiguous, so the tree path's insertion-order tie-break must decide;
//   - a crossing overlap (s extends past top's end without containing it)
//     is the pipelined-execution signature that degrades the ancestor
//     stacks toward O(n) scans.
//
// Both eventsEligible and the stream correlator's per-window degradation
// use this predicate, so batch and stream agree on what counts as overlap.
func stackConflict(top, s *trace.Span) bool {
	if top.Begin == s.Begin && top.End == s.End {
		return true // duplicate interval
	}
	return s.Begin < top.End && top.End < s.End // crossing overlap
}

// levelStacks maintains, per stack level, the spans whose interval is
// still active at the sweep position. Entries are pushed in begin order;
// dead entries (ended strictly before the current begin) are popped
// lazily. Every container of a query interval is guaranteed to be on its
// level's stack when the query runs: containers begin no later than the
// query and end no earlier, so they can never have been popped.
//
// The five paper levels index a flat array — a map here would put a hash
// lookup and mapassign on every one of the sweep's pushes; exotic level
// numbers spill into a pointer map.
type levelStacks struct {
	flat     [16][]*trace.Span
	overflow map[trace.Level]*[]*trace.Span
}

// slot returns the stack for a level, creating the overflow entry on
// first use.
func (ls *levelStacks) slot(l trace.Level) *[]*trace.Span {
	if l >= 0 && int(l) < len(ls.flat) {
		return &ls.flat[l]
	}
	if st, ok := ls.overflow[l]; ok {
		return st
	}
	if ls.overflow == nil {
		ls.overflow = make(map[trace.Level]*[]*trace.Span)
	}
	st := new([]*trace.Span)
	ls.overflow[l] = st
	return st
}

func (ls *levelStacks) push(s *trace.Span) {
	st := ls.slot(s.Level)
	popDead(st, s.Begin)
	*st = append(*st, s)
}

func popDead(st *[]*trace.Span, begin vclock.Time) {
	stack := *st
	for n := len(stack); n > 0 && stack[n-1].End < begin; n-- {
		stack = stack[:n-1]
	}
	*st = stack
}

// parent finds the smallest active span containing s at the nearest level
// above s's level that yields a hit, mirroring the interval-tree walk. The
// bottom-to-top scan visits candidates in ascending begin order — the same
// order the tree's in-order traversal uses — so tie-breaks agree.
func (ls *levelStacks) parent(levels []trace.Level, s *trace.Span) *trace.Span {
	for i := len(levels) - 1; i >= 0; i-- {
		l := levels[i]
		if l >= s.Level {
			continue
		}
		st := ls.slot(l)
		popDead(st, s.Begin)
		var best *trace.Span
		for _, c := range *st {
			if c.Begin <= s.Begin && s.End <= c.End {
				if best == nil || c.End-c.Begin < best.End-best.Begin {
					best = c
				}
			}
		}
		if best != nil {
			return best
		}
		// Keep walking up: a span that escapes its layer may still be
		// inside the model span.
	}
	return nil
}

// corrTable maps correlation id -> launch parent span id. Correlation ids
// come from per-process counters (CUPTI's correlation_id; internal/cuda
// mirrors it), so they are almost always a dense range: a flat array then
// beats a map by a wide margin. Sparse id sets fall back to a map. A zero
// parent means "unresolved", which readers treat the same as absent.
type corrTable struct {
	min    uint64
	dense  []uint64
	sparse map[uint64]uint64
}

// newSparseCorrTable returns a map-backed corrTable for callers that
// cannot pre-scan the launch set — the stream correlator, whose launches
// arrive one at a time.
func newSparseCorrTable() *corrTable {
	return &corrTable{sparse: make(map[uint64]uint64)}
}

func newCorrTable(launches []*trace.Span) *corrTable {
	ct := &corrTable{}
	var lo, hi uint64
	n := 0
	for _, s := range launches {
		if s.CorrelationID == 0 {
			continue
		}
		if n == 0 || s.CorrelationID < lo {
			lo = s.CorrelationID
		}
		if s.CorrelationID > hi {
			hi = s.CorrelationID
		}
		n++
	}
	if n == 0 {
		return ct
	}
	if span := hi - lo + 1; span <= uint64(4*n+64) {
		ct.min = lo
		ct.dense = make([]uint64, span)
	} else {
		ct.sparse = make(map[uint64]uint64, n)
	}
	return ct
}

func (ct *corrTable) set(corr, parent uint64) {
	if ct.dense != nil {
		ct.dense[corr-ct.min] = parent
		return
	}
	if ct.sparse != nil {
		ct.sparse[corr] = parent
	}
}

func (ct *corrTable) get(corr uint64) uint64 {
	if ct.dense != nil {
		if i := corr - ct.min; i < uint64(len(ct.dense)) {
			return ct.dense[i]
		}
		return 0
	}
	return ct.sparse[corr] // nil map reads as 0
}

// delete removes an entry, releasing its memory on the sparse (streaming)
// form — the CorrRetain eviction path. The dense form only zeroes the
// slot; its backing array is sized by the batch pre-scan and lives for one
// correlation anyway.
func (ct *corrTable) delete(corr uint64) {
	if ct.dense != nil {
		if i := corr - ct.min; i < uint64(len(ct.dense)) {
			ct.dense[i] = 0
		}
		return
	}
	delete(ct.sparse, corr)
}

// len reports the number of live entries on the sparse (streaming) form;
// the dense batch form is transient and never inspected for size.
func (ct *corrTable) len() int { return len(ct.sparse) }

func correlateSweep(tr *trace.Trace, levels []trace.Level, events []*trace.Span) {
	top := levels[0]

	// Launch spans that pass 1 will assign, recorded in trace order up
	// front so launchParent is filled exactly as the tree path fills it
	// (launches with pre-recorded parents are skipped there too).
	var pass1Launches []*trace.Span
	for _, s := range tr.Spans {
		if s.ParentID == 0 && s.Level != top && s.Kind == trace.KindLaunch {
			pass1Launches = append(pass1Launches, s)
		}
	}

	// First pass: launch spans and synchronous spans find parents by
	// containment as the sweep advances.
	stacks := new(levelStacks)
	for _, s := range events {
		if s.ParentID == 0 && s.Level != top && s.Kind != trace.KindExec {
			if p := stacks.parent(levels, s); p != nil {
				s.ParentID = p.ID
			}
		}
		stacks.push(s)
	}

	launchParent := newCorrTable(pass1Launches)
	for _, s := range pass1Launches {
		if s.CorrelationID != 0 {
			launchParent.set(s.CorrelationID, s.ParentID)
		}
	}

	// Second pass: execution spans inherit the launch span's parent via
	// correlation id; device-only records with no launch span (e.g. a
	// trace captured with the activity API alone) fall back to
	// containment in a fresh sweep.
	var pending map[*trace.Span]bool
	for _, s := range tr.Spans {
		if s.ParentID != 0 || s.Kind != trace.KindExec {
			continue
		}
		if pid := launchParent.get(s.CorrelationID); pid != 0 {
			s.ParentID = pid
			continue
		}
		if pending == nil {
			pending = make(map[*trace.Span]bool)
		}
		pending[s] = true
	}
	if len(pending) == 0 {
		return
	}
	stacks = new(levelStacks)
	for _, s := range events {
		if pending[s] {
			if p := stacks.parent(levels, s); p != nil {
				s.ParentID = p.ID
			}
		}
		stacks.push(s)
	}
}

// parallelQueryThreshold is the span count below which the per-span
// interval-tree query loops stay serial: goroutine fan-out only pays for
// itself once there are a few thousand independent queries to amortize it.
const parallelQueryThreshold = 2048

// queryShards runs fn over contiguous shards of [0, n), one goroutine per
// available CPU — serially when n is small or only one CPU is available.
// Callers guarantee fn touches disjoint state per index (read-only trees,
// per-index output slots).
func queryShards(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if n < parallelQueryThreshold || workers < 2 {
		fn(0, n)
		return
	}
	stride := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += stride {
		hi := min(lo+stride, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// treeParents resolves the containment parent of every span concurrently,
// returning parent IDs indexed like spans (zero for no parent). The
// queries are pure reads on fully built interval trees — the tree package
// documents a built tree as safe for concurrent queries — and independent
// of the correlation table, so they shard by span; callers apply the
// results serially wherever ordering (correlation-table fills, dirty
// tracking) matters. The batch tree path, the stream correlator's window
// close, and the straggler repair all query through this.
func treeParents(levels []trace.Level, tree func(trace.Level) *interval.Tree, spans []*trace.Span) []uint64 {
	out := make([]uint64, len(spans))
	queryShards(len(spans), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if p := treeParentAt(levels, tree, spans[i]); p != nil {
				out[i] = p.ID
			}
		}
	})
	return out
}

// treeParentAt finds the smallest span containing s at the nearest level
// above s's level that yields a hit, walking per-level interval trees;
// levels the lookup has no tree for are skipped. The batch tree path and
// the stream correlator's window fallback share this walk, so their
// parent assignment cannot drift apart.
func treeParentAt(levels []trace.Level, tree func(trace.Level) *interval.Tree, s *trace.Span) *trace.Span {
	for i := len(levels) - 1; i >= 0; i-- {
		l := levels[i]
		if l >= s.Level {
			continue
		}
		t := tree(l)
		if t == nil {
			continue
		}
		q := interval.Interval{Start: s.Begin, End: s.End, Value: s}
		if got, ok := t.SmallestContaining(q); ok {
			return got.Value.(*trace.Span)
		}
		// Keep walking up: a span that escapes its layer may still be
		// inside the model span.
	}
	return nil
}

// correlateTree is the interval-tree path: one tree per level, queried
// span by span. It handles arbitrary overlap. The per-level slices come
// from the trace's index — already begin-sorted stably over Spans order,
// which is the insertion order the tree's tie-break among equal-duration
// containers depends on — and the trees build concurrently, one goroutine
// per level.
func correlateTree(tr *trace.Trace, levels []trace.Level) {
	trees := make([]*interval.Tree, len(levels))
	var wg sync.WaitGroup
	for i, l := range levels {
		if i == len(levels)-1 {
			// The deepest level's tree can never be consulted — parent
			// queries only walk levels above the querying span's — and it
			// would hold the bulk of the spans (the kernels). treeParentAt
			// skips nil trees, so eliding it is invisible.
			continue
		}
		wg.Add(1)
		// The indexed slice is shared and read-only; insertion copies the
		// interval bounds out, so the tree build never mutates it.
		go func(i int, spans []*trace.Span) {
			defer wg.Done()
			t := interval.New()
			for _, s := range spans {
				t.Insert(interval.Interval{Start: s.Begin, End: s.End, Value: s})
			}
			trees[i] = t
		}(i, tr.ByLevel(l))
	}
	wg.Wait()

	byLevel := make(map[trace.Level]*interval.Tree, len(levels))
	for i, l := range levels {
		byLevel[l] = trees[i]
	}
	tree := func(l trace.Level) *interval.Tree { return byLevel[l] }

	// First pass: launch spans and synchronous spans find parents by
	// containment. The per-span queries are read-only once the trees are
	// built, so they shard across CPUs (treeParents); the serial
	// application below fills the correlation table in trace order,
	// keeping the duplicate-correlation-id tie-break identical to the
	// serial loop this replaces.
	var pass1 []*trace.Span
	for _, s := range tr.Spans {
		if s.ParentID != 0 || s.Level == levels[0] {
			continue
		}
		if s.Kind == trace.KindExec {
			continue // second pass
		}
		pass1 = append(pass1, s)
	}
	parents := treeParents(levels, tree, pass1)
	launchParent := make(map[uint64]uint64) // correlation id -> parent span id
	for i, s := range pass1 {
		if parents[i] != 0 {
			s.ParentID = parents[i]
		}
		if s.Kind == trace.KindLaunch && s.CorrelationID != 0 {
			launchParent[s.CorrelationID] = s.ParentID
		}
	}

	// Second pass: execution spans inherit the launch span's parent via
	// correlation id; device-only records fall back to containment —
	// those containment queries shard the same way.
	var pass2 []*trace.Span
	for _, s := range tr.Spans {
		if s.ParentID != 0 || s.Kind != trace.KindExec {
			continue
		}
		if pid, ok := launchParent[s.CorrelationID]; ok && pid != 0 {
			s.ParentID = pid
			continue
		}
		pass2 = append(pass2, s)
	}
	parents = treeParents(levels, tree, pass2)
	for i, s := range pass2 {
		if parents[i] != 0 {
			s.ParentID = parents[i]
		}
	}
}

// Ambiguous reports whether the trace contains kernel executions whose
// layer attribution could not be determined — which happens when execution
// crosses layer boundaries (pipelined execution) and no launch span exists
// to resolve it through the correlation id (e.g. a profiler that only
// captures the activity API). XSP responds by profiling again with the
// events serialized (CUDA_LAUNCH_BLOCKING=1 for GPUs), which the paper
// notes requires no application modification. Memory copies legitimately
// belong to the model span (they frame the layer stream), so they are
// never ambiguous.
func Ambiguous(tr *trace.Trace) bool {
	hasLayers := len(tr.ByLevel(trace.LevelLayer)) > 0
	if !hasLayers {
		return false // nothing finer than the model span to attribute to
	}
	for _, s := range tr.ByLevel(trace.LevelKernel) {
		if s.Kind == trace.KindLaunch && s.Name != "cudaLaunchKernel" {
			continue // memcpy and other non-kernel API calls
		}
		if s.Kind == trace.KindExec && strings.HasPrefix(s.Name, "Memcpy") {
			continue
		}
		if s.ParentID == 0 {
			return true
		}
		if p := tr.ByID(s.ParentID); p != nil && p.Level != trace.LevelLayer {
			return true
		}
	}
	return false
}
