package core

import (
	"strings"

	"xsp/internal/interval"
	"xsp/internal/trace"
)

// Correlate reconstructs the parent-child relationships that the disjoint
// profilers could not record (Section III-A of the paper). Spans that
// already carry a parent reference keep it. For the rest:
//
//   - a launch span's parent is the smallest span at the nearest enabled
//     level above that fully contains it (found with an interval tree);
//   - an execution span's parent is its launch span's parent, resolved
//     through the shared correlation_id — execution happens later on the
//     device, so containment in the launching layer cannot be assumed.
func Correlate(tr *trace.Trace) {
	levels := tr.Levels()
	if len(levels) == 0 {
		return
	}

	// One interval tree per level, holding that level's spans.
	trees := make(map[trace.Level]*interval.Tree, len(levels))
	for _, l := range levels {
		t := interval.New()
		for _, s := range tr.ByLevel(l) {
			t.Insert(interval.Interval{Start: s.Begin, End: s.End, Value: s})
		}
		trees[l] = t
	}

	// parentAt finds the smallest span containing [begin,end] at the
	// nearest level above `below` that has any spans.
	parentAt := func(below trace.Level, s *trace.Span) *trace.Span {
		for i := len(levels) - 1; i >= 0; i-- {
			l := levels[i]
			if l >= below {
				continue
			}
			q := interval.Interval{Start: s.Begin, End: s.End, Value: s}
			if got, ok := trees[l].SmallestContaining(q); ok {
				return got.Value.(*trace.Span)
			}
			// Keep walking up: a span that escapes its layer may
			// still be inside the model span.
		}
		return nil
	}

	// First pass: launch spans and synchronous spans find parents by
	// containment.
	launchParent := make(map[uint64]uint64) // correlation id -> parent span id
	for _, s := range tr.Spans {
		if s.ParentID != 0 || s.Level == levels[0] {
			continue
		}
		if s.Kind == trace.KindExec {
			continue // second pass
		}
		if p := parentAt(s.Level, s); p != nil {
			s.ParentID = p.ID
		}
		if s.Kind == trace.KindLaunch && s.CorrelationID != 0 {
			launchParent[s.CorrelationID] = s.ParentID
		}
	}

	// Second pass: execution spans inherit the launch span's parent via
	// correlation id; device-only records with no launch span (e.g. a
	// trace captured with the activity API alone) fall back to
	// containment.
	for _, s := range tr.Spans {
		if s.ParentID != 0 || s.Kind != trace.KindExec {
			continue
		}
		if pid, ok := launchParent[s.CorrelationID]; ok && pid != 0 {
			s.ParentID = pid
			continue
		}
		if p := parentAt(s.Level, s); p != nil {
			s.ParentID = p.ID
		}
	}
}

// Ambiguous reports whether the trace contains kernel executions whose
// layer attribution could not be determined — which happens when execution
// crosses layer boundaries (pipelined execution) and no launch span exists
// to resolve it through the correlation id (e.g. a profiler that only
// captures the activity API). XSP responds by profiling again with the
// events serialized (CUDA_LAUNCH_BLOCKING=1 for GPUs), which the paper
// notes requires no application modification. Memory copies legitimately
// belong to the model span (they frame the layer stream), so they are
// never ambiguous.
func Ambiguous(tr *trace.Trace) bool {
	hasLayers := len(tr.ByLevel(trace.LevelLayer)) > 0
	if !hasLayers {
		return false // nothing finer than the model span to attribute to
	}
	for _, s := range tr.Spans {
		if s.Level != trace.LevelKernel {
			continue
		}
		if s.Kind == trace.KindLaunch && s.Name != "cudaLaunchKernel" {
			continue // memcpy and other non-kernel API calls
		}
		if s.Kind == trace.KindExec && strings.HasPrefix(s.Name, "Memcpy") {
			continue
		}
		if s.ParentID == 0 {
			return true
		}
		if p := tr.ByID(s.ParentID); p != nil && p.Level != trace.LevelLayer {
			return true
		}
	}
	return false
}
