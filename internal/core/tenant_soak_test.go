package core_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xsp/internal/core"
	"xsp/internal/trace"
	"xsp/internal/vclock"
	"xsp/internal/workload"
)

// TestMultiTenantSoak is the tenancy tentpole's soak: several tenants,
// each overdriven by its own publisher pool against per-tenant admission
// budgets, all sharing one server and one TenantSet worker pool. Asserts
// the three properties the sharding must not break: (a) every tenant's
// live state stays inside its own configured ceiling, (b) every tenant
// ends exactly-once — its span set is precisely what its publishers
// generated, nothing leaked in from a neighbor, and its stream equals the
// batch oracle — and (c) every tenant's pressure recovers to nominal
// after the burst.
func TestMultiTenantSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test: skipped in -short")
	}
	const (
		tenants    = 4
		publishers = 10 // per tenant
		batchSpans = 64
		tapQueue   = 256
		spanBudget = 512  // per-tenant in-flight span budget
		pressure   = 2048 // per-tenant correlator live-span budget
	)
	perTenant := soakSpans(t) / 20

	set := core.NewTenantSet(core.TenantSetOptions{
		Stream: core.StreamOptions{
			Isolated:      true,
			ReorderWindow: 512,
			Retain:        1024,
			PressureSpans: pressure,
		},
	})
	srv := trace.NewServer()
	srv.SetAdmission(trace.AdmissionPolicy{
		MaxInflightBytes: 8 << 20,
		MaxInflightSpans: spanBudget,
		RetryAfter:       time.Millisecond,
	})
	// Tenants materialize before traffic starts, so the taps map is
	// read-only while publishers run. The throttled consumer is what makes
	// each tenant's overdrive genuinely outrun its correlator.
	taps := make(map[string]*trace.AsyncTap)
	srv.SetTenantInit(func(tn *trace.ServerTenant) {
		st, err := set.Stream(tn.Key())
		if err != nil {
			t.Errorf("tenant %s: %v", tn.Key(), err)
			return
		}
		tn.SetLoad(st)
		taps[tn.Key()] = tn.SetTapAsync(&slowCollector{dst: st, delay: 2 * time.Millisecond},
			trace.TapOptions{Queue: tapQueue, Policy: trace.ShedBlock})
	})
	keys := make([]string, tenants)
	for i := range keys {
		keys[i] = fmt.Sprintf("soak-%d", i)
		srv.Tenant(keys[i])
	}
	defer func() {
		for _, tap := range taps {
			tap.Close()
		}
	}()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// The monitor is each tenant's periodic snapshot reader: Flush repairs
	// stragglers, Checkpoint folds history so pressure can recover while
	// admission sheds, and the samples back the per-tenant bound asserts.
	maxLive := make([]int, tenants)
	var sampleMu sync.Mutex
	sample := func() {
		sampleMu.Lock()
		defer sampleMu.Unlock()
		for i, key := range keys {
			maxLive[i] = max(maxLive[i], set.Lookup(key).Correlator().Load().LiveSpans)
		}
	}
	stop := make(chan struct{})
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
				for _, key := range keys {
					sc := set.Lookup(key).Correlator()
					sc.Flush()
					sc.Checkpoint()
				}
				sample()
			}
		}
	}()

	var wg sync.WaitGroup
	var aborted atomic.Bool
	deadline := time.Now().Add(2 * time.Minute)
	generated := make([]int, tenants)
	published := make([]map[uint64]bool, tenants)
	for ti := range keys {
		published[ti] = make(map[uint64]bool, perTenant)
		wg.Add(1)
		go func(ti int, key string) {
			defer wg.Done()
			cols := make([]*trace.HTTPCollector, publishers)
			for p := range cols {
				cols[p] = trace.NewHTTPCollector(ts.URL)
				if err := cols[p].SetTenant(key); err != nil {
					t.Errorf("tenant %s: %v", key, err)
					return
				}
				cols[p].SetRetryPolicy(trace.RetryPolicy{
					BaseDelay: 200 * time.Microsecond,
					MaxDelay:  5 * time.Millisecond,
					// MaxAttempts zero: never drop — exactly-once per tenant.
				})
			}
			var mu sync.Mutex
			generated[ti] = workload.PublishOverdriven(workload.OverloadSpec{
				Publishers: publishers,
				SpansEach:  perTenant / publishers,
				BatchSpans: batchSpans,
				Seed:       int64(100 + ti),
			}, func(p int, batch []*trace.Span) {
				if aborted.Load() {
					return
				}
				mu.Lock()
				for _, s := range batch {
					published[ti][s.ID] = true
				}
				mu.Unlock()
				retryUntilShipped(t, cols[p], &aborted, deadline, batch)
			})
		}(ti, keys[ti])
	}
	wg.Wait()
	close(stop)
	monWG.Wait()
	if aborted.Load() {
		t.Fatal("soak aborted on a wedged publisher")
	}

	// Drain: each tenant's tap barrier, then its final Flush.
	for _, key := range keys {
		taps[key].Flush()
		set.Lookup(key).Correlator().Flush()
	}

	liveBound := pressure + batchSpans + spanBudget + tapQueue
	var totalShed int64
	for ti, key := range keys {
		tn := srv.Tenant(key)
		sc := set.Lookup(key).Correlator()

		// (a) This tenant's structures held this tenant's bounds.
		if maxLive[ti] > liveBound {
			t.Errorf("tenant %s: live spans peaked at %d, admission ceiling is %d", key, maxLive[ti], liveBound)
		}
		if st := taps[key].Stats(); st.MaxDepth > tapQueue || st.Dropped != 0 {
			t.Errorf("tenant %s: tap peaked at %d (bound %d), dropped %d", key, st.MaxDepth, tapQueue, st.Dropped)
		}
		totalShed += tn.OverloadStats().ShedRequests

		// (b) Exactly-once over exactly this tenant's spans: the count, the
		// span set (nothing from a neighboring tenant's generator), and the
		// stream-vs-batch parent assignment all match.
		if got := tn.Received(); got != generated[ti] {
			t.Errorf("tenant %s accepted %d spans, generated %d", key, got, generated[ti])
		}
		accepted := tn.Trace()
		if len(accepted.Spans) != generated[ti] {
			t.Errorf("tenant %s store holds %d spans, want %d", key, len(accepted.Spans), generated[ti])
		}
		seen := make(map[uint64]bool, len(accepted.Spans))
		for _, s := range accepted.Spans {
			if seen[s.ID] {
				t.Fatalf("tenant %s span %d stored twice — a retried batch re-published", key, s.ID)
			}
			seen[s.ID] = true
			if !published[ti][s.ID] {
				t.Fatalf("tenant %s holds span %d it never published — cross-tenant leak", key, s.ID)
			}
		}
		assertStreamMatchesBatch(t, sc, [][]*trace.Span{accepted.Spans})

		// (c) Post-burst recovery, per tenant: history folded, pressure
		// nominal, in-flight accounting drained.
		sc.Checkpoint()
		if got := sc.Pressure(); got != trace.PressureNominal {
			t.Errorf("tenant %s post-burst pressure %v, want nominal", key, got)
		}
		if ost := tn.OverloadStats(); ost.InflightSpans != 0 || ost.TapDepth != 0 {
			t.Errorf("tenant %s post-burst in-flight state not drained: %+v", key, ost)
		}
	}
	if totalShed == 0 {
		t.Error("overdriven run never shed a request — the soak is not overloading")
	}
	if ost := srv.OverloadStats(); ost.ShedRequests != totalShed {
		t.Errorf("global shed counter %d, per-tenant sum %d", ost.ShedRequests, totalShed)
	}
}

// BenchmarkIngestToCorrelateParallel is the tenancy scaling benchmark:
// each goroutine is one tenant streaming its own spans through the full
// wire path (collector binary encode → POST → decode → per-tenant publish
// → tap → that tenant's stream correlator) behind a single server. With
// -cpu=1,2,4... the spans/s curve is the sharding's scorecard: tenants
// share nothing on the hot path but the listener and the worker pool, so
// throughput should scale with cores until the pool caps it. One op is a
// 512-span batch; each goroutine rebases its private stream's IDs and
// virtual times forward whenever it wraps, so every tenant's stream stays
// monotone and dedup-clean for arbitrarily large b.N. Run with -benchmem.
func BenchmarkIngestToCorrelateParallel(b *testing.B) {
	const n = 4_096
	const batchSize = 512
	proto := workload.StreamingArrivals(workload.StreamingSpec{
		Trace:     workload.SyntheticSpec{Spans: n, Seed: 42},
		BatchSize: batchSize, ReorderSkew: 48, Seed: 42,
	})
	var maxID uint64
	var maxT vclock.Time
	for _, batch := range proto {
		for _, s := range batch {
			maxID = max(maxID, s.ID, s.CorrelationID)
			maxT = max(maxT, s.End)
		}
	}

	set := core.NewTenantSet(core.TenantSetOptions{
		Stream: core.StreamOptions{ReorderWindow: 48, Retain: 4_096},
	})
	srv := trace.NewServer()
	srv.SetTenantInit(func(tn *trace.ServerTenant) {
		st, err := set.Stream(tn.Key())
		if err != nil {
			b.Errorf("tenant %s: %v", tn.Key(), err)
			return
		}
		tn.SetTap(st) // synchronous: the op includes the correlator's Feed
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	// One pooled connection per tenant: the default transport keeps two
	// idle conns per host, which would serialize every goroutine past the
	// second on TCP handshakes.
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
	defer client.CloseIdleConnections()

	var nextTenant atomic.Uint64
	var shipped atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		key := fmt.Sprintf("bench-%d", nextTenant.Add(1))
		col := trace.NewHTTPCollector(ts.URL)
		col.SetHTTPClient(client)
		col.SetEncoding(trace.EncodingBinary)
		if err := col.SetTenant(key); err != nil {
			b.Error(err)
			return
		}
		// A private copy of the stream this goroutine can rebase in place.
		stream := make([][]*trace.Span, len(proto))
		for i, batch := range proto {
			stream[i] = cloneBatch(batch)
		}
		cursor := 0
		for pb.Next() {
			if cursor == len(stream) {
				cursor = 0
				for _, batch := range stream {
					for _, s := range batch {
						s.ID += maxID
						if s.CorrelationID != 0 {
							s.CorrelationID += maxID
						}
						if s.ParentID != 0 {
							s.ParentID += maxID
						}
						s.Begin += maxT
						s.End += maxT
					}
				}
			}
			col.Publish(stream[cursor]...)
			if _, err := col.Flush(); err != nil {
				b.Error(err)
				return
			}
			shipped.Add(int64(len(stream[cursor])))
			cursor++
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(shipped.Load())/b.Elapsed().Seconds(), "spans/s")
	total := 0
	set.Each(func(st *core.TenantStream) {
		st.Correlator().Flush()
		stats := st.Correlator().Stats()
		total += stats.Live + stats.Checkpointed
	})
	if total != int(shipped.Load()) {
		b.Fatalf("correlators account for %d spans, shipped %d", total, shipped.Load())
	}
}
