package core

import (
	"testing"
	"time"

	"xsp/internal/gpu"
	"xsp/internal/modelzoo"
	"xsp/internal/tensorflow"
	"xsp/internal/trace"
)

// An application using more than one ML model (the paper's Section III-E
// case): a detector followed by a classifier, profiled into one timeline
// under one application span.
func TestApplicationSpansMultipleModels(t *testing.T) {
	app := NewApplication("video-pipeline")
	s := newSession()

	det, _ := modelzoo.ByName("MLPerf_SSD_MobileNet_v1_300x300")
	dg, err := det.Graph(1)
	if err != nil {
		t.Fatal(err)
	}
	detRes, err := app.Profile(s, dg, Options{Levels: ML})
	if err != nil {
		t.Fatal(err)
	}

	app.Idle(2 * time.Millisecond) // business logic between models

	clsRes, err := app.Profile(s, resnetGraph(t, 4), Options{Levels: MLG})
	if err != nil {
		t.Fatal(err)
	}

	tr := app.Finish()
	root := tr.Find("video-pipeline")
	if root == nil || root.Level != trace.LevelApplication {
		t.Fatal("application span missing")
	}

	// Both predictions nest under the one application span, in order,
	// separated by the idle gap.
	var predictions []*trace.Span
	for _, sp := range tr.Spans {
		if sp.Name == "model_prediction" {
			predictions = append(predictions, sp)
		}
	}
	if len(predictions) != 2 {
		t.Fatalf("predictions = %d, want 2", len(predictions))
	}
	for i, p := range predictions {
		if p.ParentID != root.ID {
			t.Fatalf("prediction %d not under the application span", i)
		}
		if p.Begin < root.Begin || p.End > root.End {
			t.Fatalf("prediction %d outside the application window", i)
		}
	}
	if gap := predictions[1].Begin.Sub(predictions[0].End); gap < 2*time.Millisecond {
		t.Fatalf("idle gap = %v, want >= 2ms", gap)
	}

	// Each Result's model span is its own run's.
	if detRes.ModelSpan.ID == clsRes.ModelSpan.ID {
		t.Fatal("results share a model span")
	}
	// The classifier's kernels are in the application trace too.
	if len(tr.ByLevel(trace.LevelKernel)) < 100 {
		t.Fatal("kernel spans missing from application trace")
	}
}

func TestApplicationFinishedRejectsWork(t *testing.T) {
	app := NewApplication("done")
	app.Finish()
	s := newSession()
	if _, err := app.Profile(s, resnetGraph(t, 1), Options{Levels: M}); err == nil {
		t.Fatal("profiling into a finished application should fail")
	}
	// Finish is idempotent.
	tr := app.Finish()
	if len(tr.Spans) != 1 {
		t.Fatalf("spans = %d", len(tr.Spans))
	}
}

func TestApplicationRejectsCustomCollector(t *testing.T) {
	app := NewApplication("a")
	s := newSession()
	_, err := app.Profile(s, resnetGraph(t, 1), Options{Levels: M, Collector: trace.NewMemory()})
	if err == nil {
		t.Fatal("custom collector should be rejected inside an application")
	}
}

// Different sessions (frameworks/systems) can feed one application.
func TestApplicationAcrossSessions(t *testing.T) {
	app := NewApplication("multi-system")
	v100 := NewSession(tensorflow.New(), gpu.TeslaV100)
	p4 := NewSession(tensorflow.New(), gpu.TeslaP4)

	if _, err := app.Profile(v100, resnetGraph(t, 1), Options{Levels: M}); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Profile(p4, resnetGraph(t, 1), Options{Levels: M}); err != nil {
		t.Fatal(err)
	}
	tr := app.Finish()
	var count int
	for _, sp := range tr.Spans {
		if sp.Name == "model_prediction" {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("predictions = %d", count)
	}
}
