package core

import (
	"testing"
	"time"

	"xsp/internal/gpu"
	"xsp/internal/modelzoo"
	"xsp/internal/tensorflow"
	"xsp/internal/trace"
)

// An application using more than one ML model (the paper's Section III-E
// case): a detector followed by a classifier, profiled into one timeline
// under one application span.
func TestApplicationSpansMultipleModels(t *testing.T) {
	app := NewApplication("video-pipeline")
	s := newSession()

	det, _ := modelzoo.ByName("MLPerf_SSD_MobileNet_v1_300x300")
	dg, err := det.Graph(1)
	if err != nil {
		t.Fatal(err)
	}
	detRes, err := app.Profile(s, dg, Options{Levels: ML})
	if err != nil {
		t.Fatal(err)
	}

	app.Idle(2 * time.Millisecond) // business logic between models

	clsRes, err := app.Profile(s, resnetGraph(t, 4), Options{Levels: MLG})
	if err != nil {
		t.Fatal(err)
	}

	tr := app.Finish()
	root := tr.Find("video-pipeline")
	if root == nil || root.Level != trace.LevelApplication {
		t.Fatal("application span missing")
	}

	// Both predictions nest under the one application span, in order,
	// separated by the idle gap.
	var predictions []*trace.Span
	for _, sp := range tr.Spans {
		if sp.Name == "model_prediction" {
			predictions = append(predictions, sp)
		}
	}
	if len(predictions) != 2 {
		t.Fatalf("predictions = %d, want 2", len(predictions))
	}
	for i, p := range predictions {
		if p.ParentID != root.ID {
			t.Fatalf("prediction %d not under the application span", i)
		}
		if p.Begin < root.Begin || p.End > root.End {
			t.Fatalf("prediction %d outside the application window", i)
		}
	}
	if gap := predictions[1].Begin.Sub(predictions[0].End); gap < 2*time.Millisecond {
		t.Fatalf("idle gap = %v, want >= 2ms", gap)
	}

	// Each Result's model span is its own run's.
	if detRes.ModelSpan.ID == clsRes.ModelSpan.ID {
		t.Fatal("results share a model span")
	}
	// The classifier's kernels are in the application trace too.
	if len(tr.ByLevel(trace.LevelKernel)) < 100 {
		t.Fatal("kernel spans missing from application trace")
	}
}

// An ambiguous first attempt inside an application must not leak into the
// shared collector when XSP re-runs serialized: the first attempt is
// speculative and profiles into a scratch collector, so the application
// trace sees each pipeline step exactly once, not once per attempt.
func TestApplicationSerializedRerunDoesNotDoubleCount(t *testing.T) {
	app := NewApplication("rerun")
	s := newSession()
	res, err := app.Profile(s, resnetGraph(t, 256), Options{Levels: MLG, Pipelined: true, ActivityOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Serialized {
		t.Fatal("profile did not trigger the serialized re-run this regression needs")
	}
	tr := app.Finish()
	counts := map[string]int{}
	for _, sp := range tr.Spans {
		counts[sp.Name]++
	}
	for _, name := range []string{"model_prediction", "input_preprocess", "output_postprocess"} {
		if counts[name] != 1 {
			t.Fatalf("%s appears %d times in the application trace, want 1 (abandoned first attempt leaked)",
				name, counts[name])
		}
	}
}

// The promoted path: an unambiguous first attempt's spans land in the
// shared collector exactly once, with their resolved parents intact.
func TestApplicationPromotesUnambiguousRun(t *testing.T) {
	app := NewApplication("promote")
	s := newSession()
	res, err := app.Profile(s, resnetGraph(t, 4), Options{Levels: MLG})
	if err != nil {
		t.Fatal(err)
	}
	if res.Serialized {
		t.Fatal("unexpected serialized re-run")
	}
	tr := app.Finish()
	if got := len(tr.Spans); got != len(res.Trace.Spans)+1 { // + application root
		t.Fatalf("application trace has %d spans, run had %d", got, len(res.Trace.Spans))
	}
	predict := tr.Find("model_prediction")
	root := tr.Find("promote")
	if predict == nil || root == nil || predict.ParentID != root.ID {
		t.Fatal("promoted run lost its link to the application span")
	}
}

func TestApplicationFinishedRejectsWork(t *testing.T) {
	app := NewApplication("done")
	app.Finish()
	s := newSession()
	if _, err := app.Profile(s, resnetGraph(t, 1), Options{Levels: M}); err == nil {
		t.Fatal("profiling into a finished application should fail")
	}
	// Finish is idempotent.
	tr := app.Finish()
	if len(tr.Spans) != 1 {
		t.Fatalf("spans = %d", len(tr.Spans))
	}
}

func TestApplicationRejectsCustomCollector(t *testing.T) {
	app := NewApplication("a")
	s := newSession()
	_, err := app.Profile(s, resnetGraph(t, 1), Options{Levels: M, Collector: trace.NewMemory()})
	if err == nil {
		t.Fatal("custom collector should be rejected inside an application")
	}
}

// Different sessions (frameworks/systems) can feed one application.
func TestApplicationAcrossSessions(t *testing.T) {
	app := NewApplication("multi-system")
	v100 := NewSession(tensorflow.New(), gpu.TeslaV100)
	p4 := NewSession(tensorflow.New(), gpu.TeslaP4)

	if _, err := app.Profile(v100, resnetGraph(t, 1), Options{Levels: M}); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Profile(p4, resnetGraph(t, 1), Options{Levels: M}); err != nil {
		t.Fatal(err)
	}
	tr := app.Finish()
	var count int
	for _, sp := range tr.Spans {
		if sp.Name == "model_prediction" {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("predictions = %d", count)
	}
}
