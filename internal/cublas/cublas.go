// Package cublas simulates the cuBLAS library's GEMM kernels, used by the
// frameworks' MatMul / fully-connected layers.
package cublas

import (
	"fmt"

	"xsp/internal/gpu"
)

// GemmParams describes a single-precision (M x K) by (K x N) product.
type GemmParams struct {
	M, K, N int
}

// Flops returns the 2*M*N*K multiply-accumulate flop count.
func (p GemmParams) Flops() float64 {
	return 2 * float64(p.M) * float64(p.K) * float64(p.N)
}

// ABytes, BBytes, CBytes are the FP32 operand sizes.
func (p GemmParams) ABytes() float64 { return 4 * float64(p.M) * float64(p.K) }

// BBytes returns the size of the weight operand.
func (p GemmParams) BBytes() float64 { return 4 * float64(p.K) * float64(p.N) }

// CBytes returns the size of the output operand.
func (p GemmParams) CBytes() float64 { return 4 * float64(p.M) * float64(p.N) }

func archPrefix(arch gpu.Arch) string {
	if arch >= gpu.Volta {
		return "volta"
	}
	return "maxwell"
}

// Kernel returns the sgemm kernel cuBLAS dispatches for the product. Small
// batch dimensions select the slim 32x128 tile; larger ones the 128x64
// tile. The weight matrix streams from DRAM once per call, which is what
// makes large fully-connected layers memory-bound at small batch (e.g. the
// paper's AlexNet, memory-bound at optimal batch 16).
func Kernel(p GemmParams, arch gpu.Arch) gpu.Kernel {
	tile := "128x64"
	if p.M < 32 {
		tile = "32x128"
	}
	return gpu.Kernel{
		Name:  fmt.Sprintf("%s_sgemm_%s_tn", archPrefix(arch), tile),
		Grid:  gpu.Dim3{(p.M*p.N)/4096 + 1, 1, 1},
		Block: gpu.Dim3{256, 1, 1},
		Flops: p.Flops(),
		// A is re-read per tile column; B (weights) streams once; C
		// written once.
		DramRead:   p.ABytes()*1.2 + p.BBytes(),
		DramWrite:  p.CBytes(),
		ComputeEff: gemmEff(arch),
		MemEff:     0.72,
		Occupancy:  0.25,
	}
}

func gemmEff(arch gpu.Arch) float64 {
	if arch >= gpu.Volta {
		return 0.85
	}
	return 0.75
}
