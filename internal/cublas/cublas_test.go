package cublas

import (
	"strings"
	"testing"

	"xsp/internal/gpu"
)

func TestFlops(t *testing.T) {
	p := GemmParams{M: 256, K: 2048, N: 1000}
	want := 2.0 * 256 * 2048 * 1000
	if got := p.Flops(); got != want {
		t.Fatalf("Flops = %g, want %g", got, want)
	}
}

func TestOperandBytes(t *testing.T) {
	p := GemmParams{M: 2, K: 3, N: 5}
	if p.ABytes() != 24 || p.BBytes() != 60 || p.CBytes() != 40 {
		t.Fatalf("bytes = %v %v %v", p.ABytes(), p.BBytes(), p.CBytes())
	}
}

func TestKernelNaming(t *testing.T) {
	big := GemmParams{M: 256, K: 2048, N: 1000}
	small := GemmParams{M: 1, K: 2048, N: 1000}
	if k := Kernel(big, gpu.Volta); !strings.HasPrefix(k.Name, "volta_sgemm_128x64") {
		t.Errorf("big volta kernel = %q", k.Name)
	}
	if k := Kernel(small, gpu.Volta); !strings.Contains(k.Name, "32x128") {
		t.Errorf("small-batch kernel = %q", k.Name)
	}
	if k := Kernel(big, gpu.Pascal); !strings.HasPrefix(k.Name, "maxwell_sgemm_") {
		t.Errorf("pascal kernel = %q", k.Name)
	}
	if k := Kernel(big, gpu.Turing); !strings.HasPrefix(k.Name, "volta_sgemm_") {
		t.Errorf("turing kernel = %q", k.Name)
	}
}

// A large FC layer at small batch is memory-bound (AlexNet's behaviour in
// the paper, memory-bound at optimal batch 16): the weight matrix streams
// once regardless of M, drowning the arithmetic.
func TestSmallBatchFCIsMemoryBound(t *testing.T) {
	k := Kernel(GemmParams{M: 16, K: 9216, N: 4096}, gpu.Volta)
	if ai := k.ArithmeticIntensity(); ai >= gpu.TeslaV100.IdealArithmeticIntensity() {
		t.Fatalf("FC at batch 16 intensity = %.1f, want memory-bound", ai)
	}
	big := Kernel(GemmParams{M: 4096, K: 9216, N: 4096}, gpu.Volta)
	if ai := big.ArithmeticIntensity(); ai <= gpu.TeslaV100.IdealArithmeticIntensity() {
		t.Fatalf("square GEMM intensity = %.1f, want compute-bound", ai)
	}
}

func TestKernelMetricsPositive(t *testing.T) {
	k := Kernel(GemmParams{M: 64, K: 512, N: 512}, gpu.Volta)
	if k.Flops <= 0 || k.DramRead <= 0 || k.DramWrite <= 0 {
		t.Fatal("kernel metrics must be positive")
	}
	if k.Occupancy <= 0 || k.Occupancy > 1 {
		t.Fatalf("occupancy = %v", k.Occupancy)
	}
}
