// resnet_analysis walks through all 15 XSP analyses (Table I of the
// paper) for MLPerf_ResNet50_v1.5 at its optimal batch size on
// Tesla_V100, using leveled experimentation so each analysis reads
// accurate values.
//
// Run with: go run ./examples/resnet_analysis
package main

import (
	"fmt"
	"log"
	"os"

	"xsp/internal/analysis"
	"xsp/internal/core"
	"xsp/internal/cupti"
	"xsp/internal/gpu"
	"xsp/internal/modelzoo"
	"xsp/internal/tablefmt"
	"xsp/internal/tensorflow"
	"xsp/internal/workload"
)

func main() {
	model, _ := modelzoo.ByName("MLPerf_ResNet50_v1.5")
	session := core.NewSession(tensorflow.New(), gpu.TeslaV100)

	// A1: sweep batch sizes at the model level and find the optimal.
	points, err := workload.Sweep(session, model.Graph, nil)
	if err != nil {
		log.Fatal(err)
	}
	opt := workload.OptimalBatch(points)
	fmt.Printf("A1 model information: optimal batch %d, %.1f inputs/s, %.2f ms/batch\n",
		opt.Batch, opt.Throughput, opt.Latency.Seconds()*1e3)

	// Leveled experimentation at the optimal batch: M, M/L, M/L/G runs.
	profile := func(opts core.Options) *core.Result {
		g, err := model.Graph(opt.Batch)
		if err != nil {
			log.Fatal(err)
		}
		res, err := session.Profile(g, opts)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	mRun := profile(core.Options{Levels: core.M})
	mlRun := profile(core.Options{Levels: core.ML})
	mlgRun := profile(core.Options{Levels: core.MLG, GPUMetrics: cupti.StandardMetrics})

	rs, err := analysis.NewRunSet(gpu.TeslaV100, mlgRun.Trace)
	if err != nil {
		log.Fatal(err)
	}
	rs.WithLayerTraces(mlRun.Trace).WithModelTraces(mRun.Trace)

	fmt.Printf("\nA2 top layers:\n")
	t := tablefmt.New("", "Index", "Name", "Type", "Shape", "Latency (ms)", "Alloc (MB)")
	for _, r := range rs.TopLayersByLatency(5) {
		t.AddRow(r.Index, r.Name, r.Type, r.Shape, r.LatencyMS, r.AllocMB)
	}
	t.Render(os.Stdout)

	fmt.Printf("\nA3 layer latency:    %s\n", tablefmt.Sparkline(rs.A3LayerLatencySeries(), 72))
	fmt.Printf("A4 layer allocation: %s\n", tablefmt.Sparkline(rs.A4LayerAllocSeries(), 72))

	fmt.Println("\nA5/A6/A7 by layer type:")
	for _, s := range rs.A6LatencyByType()[:5] {
		fmt.Printf("  %-10s count %3d  latency %8.2f ms (%s)\n", s.Type, s.Count, s.Value, tablefmt.Percent(s.Percent))
	}

	fmt.Println("\nA8 top kernels:")
	for _, k := range rs.TopKernelsByLatency(5) {
		fmt.Printf("  %-48s %7.3f ms  AI %7.1f  %5.2f Tflops/s\n", k.Name, k.LatencyMS, k.Intensity, k.Throughput)
	}

	mem := 0
	roof := rs.A9KernelRoofline()
	for _, p := range roof {
		if p.MemoryBound {
			mem++
		}
	}
	fmt.Printf("\nA9 kernel roofline: %d kernels, %d memory-bound\n", len(roof), mem)

	fmt.Println("\nA10 kernels by name:")
	for i, k := range rs.A10KernelsByName() {
		if i == 4 {
			break
		}
		fmt.Printf("  %-48s x%-3d %8.2f ms (%s of prediction)\n", k.Name, k.Count, k.LatencyMS, tablefmt.Percent(k.LatencyPct))
	}

	fmt.Println("\nA11 kernels by layer (top 3):")
	for _, r := range rs.TopLayersByKernelLatency(3) {
		fmt.Printf("  layer %3d: layer %.2f ms, kernels %.2f ms, %.1f Gflops\n",
			r.LayerIndex, r.LayerLatencyMS, r.KernelLatencyMS, r.Gflops)
	}

	s12 := rs.A12LayerMetrics()
	fmt.Printf("\nA12 flops per layer:  %s\n", tablefmt.Sparkline(s12.Gflops, 72))

	var gpuMS, nonMS float64
	for _, r := range rs.A13GPUvsNonGPU() {
		gpuMS += r.GPUMS
		nonMS += r.NonGPUMS
	}
	fmt.Printf("A13 GPU vs non-GPU:   %.1f ms GPU, %.1f ms non-GPU\n", gpuMS, nonMS)

	mem = 0
	lroof := rs.A14LayerRoofline()
	for _, p := range lroof {
		if p.MemoryBound {
			mem++
		}
	}
	fmt.Printf("A14 layer roofline:   %d layers with GPU work, %d memory-bound\n", len(lroof), mem)

	agg := rs.A15ModelAggregate(opt.Batch, 0)
	kind := "compute"
	if agg.MemoryBound {
		kind = "memory"
	}
	fmt.Printf("A15 model aggregate:  %.0f Gflops, occupancy %s, %s-bound (AI %.1f flops/B vs ridge %.2f)\n",
		agg.Gflops, tablefmt.Ratio(agg.Occupancy), kind, agg.Intensity, gpu.TeslaV100.IdealArithmeticIntensity())
}
