// Quickstart: profile one model across the stack with XSP and print the
// hierarchical view — the model-prediction span, its most expensive
// layers, and the GPU kernels inside them.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"xsp/internal/analysis"
	"xsp/internal/core"
	"xsp/internal/cupti"
	"xsp/internal/gpu"
	"xsp/internal/modelzoo"
	"xsp/internal/tensorflow"
)

func main() {
	// 1. Pick a model from the zoo and a system from Table VII.
	model, ok := modelzoo.ByName("MLPerf_ResNet50_v1.5")
	if !ok {
		log.Fatal("model not in zoo")
	}
	session := core.NewSession(tensorflow.New(), gpu.TeslaV100)

	// 2. Leveled experimentation: profile once per level so each level's
	//    latencies are read from the run where they are accurate —
	//    collecting GPU hardware metrics replays kernels and would
	//    distort layer latencies measured in the same run.
	profile := func(opts core.Options) *core.Result {
		graph, err := model.Graph(16)
		if err != nil {
			log.Fatal(err)
		}
		res, err := session.Profile(graph, opts)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	mRun := profile(core.Options{Levels: core.M})
	mlRun := profile(core.Options{Levels: core.ML})
	mlgRun := profile(core.Options{Levels: core.MLG, GPUMetrics: cupti.StandardMetrics})
	fmt.Printf("profiled %s: %d spans in the full-stack timeline trace\n\n",
		model.Name, len(mlgRun.Trace.Spans))

	// 3. Feed the traces to the analysis pipeline.
	rs, err := analysis.NewRunSet(gpu.TeslaV100, mlgRun.Trace)
	if err != nil {
		log.Fatal(err)
	}
	rs.WithLayerTraces(mlRun.Trace).WithModelTraces(mRun.Trace)

	fmt.Println("Top 3 layers (A2):")
	for _, l := range rs.TopLayersByLatency(3) {
		fmt.Printf("  [%3d] %-28s %-9s %8.3f ms  %7.1f MB\n",
			l.Index, l.Name, l.Type, l.LatencyMS, l.AllocMB)
	}

	fmt.Println("\nTop 3 GPU kernels (A8):")
	for _, k := range rs.TopKernelsByLatency(3) {
		fmt.Printf("  %-45s layer %3d  %8.3f ms  %6.1f Gflops\n",
			k.Name, k.LayerIndex, k.LatencyMS, k.Gflops)
	}

	agg := rs.A15ModelAggregate(16, 0)
	kind := "compute"
	if agg.MemoryBound {
		kind = "memory"
	}
	fmt.Printf("\nModel aggregate (A15): %.1f Gflops, %.0f MB DRAM traffic, %s-bound\n",
		agg.Gflops, agg.ReadsMB+agg.WritesMB, kind)
}
