// system_compare reproduces the paper's Section IV-C: the same model on
// the five GPU systems of Table VII, with the same software stack. It
// shows both the throughput ordering and the arch-dependent kernel sets
// (volta_scudnn_* on Volta/Turing vs maxwell_scudnn_* on Pascal/Maxwell).
//
// Run with: go run ./examples/system_compare
package main

import (
	"fmt"
	"log"
	"strings"

	"xsp/internal/analysis"
	"xsp/internal/core"
	"xsp/internal/cupti"
	"xsp/internal/gpu"
	"xsp/internal/modelzoo"
	"xsp/internal/tensorflow"
	"xsp/internal/workload"
)

func main() {
	model, _ := modelzoo.ByName("MLPerf_ResNet50_v1.5")
	fmt.Printf("%-12s %9s %11s %14s  %s\n", "system", "arch", "tput@256", "GPU ms@256", "dominant conv kernel")
	for _, spec := range gpu.Systems {
		session := core.NewSession(tensorflow.New(), spec)
		points, err := workload.Sweep(session, model.Graph, []int{256})
		if err != nil {
			log.Fatal(err)
		}

		g, err := model.Graph(256)
		if err != nil {
			log.Fatal(err)
		}
		res, err := session.Profile(g, core.Options{Levels: core.MLG, GPUMetrics: cupti.StandardMetrics})
		if err != nil {
			log.Fatal(err)
		}
		rs, err := analysis.NewRunSet(spec, res.Trace)
		if err != nil {
			log.Fatal(err)
		}
		dominant := ""
		for _, k := range rs.A10KernelsByName() {
			if strings.Contains(k.Name, "scudnn") {
				dominant = fmt.Sprintf("%s x%d", k.Name, k.Count)
				break
			}
		}
		fmt.Printf("%-12s %9s %9.0f/s %11.1f ms  %s\n",
			spec.Name, spec.Arch, points[0].Throughput, rs.TotalKernelLatencyMS(), dominant)
	}
	fmt.Println("\npaper: V100 fastest; Quadro RTX close behind (higher FLOPS but much lower")
	fmt.Println("       memory bandwidth); P100, P4, M60 follow; pre-Volta systems dispatch")
	fmt.Println("       maxwell_scudnn_* kernels for the same cuDNN calls")
}
