// pipeline_app profiles a whole application above the model level — the
// paper's Section III-E extension: a detection model finds regions, then a
// classification model labels them, all under one application span on one
// timeline (XSP supports this naturally because it is built on distributed
// tracing).
//
// Run with: go run ./examples/pipeline_app
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"xsp/internal/core"
	"xsp/internal/gpu"
	"xsp/internal/modelzoo"
	"xsp/internal/tensorflow"
	"xsp/internal/trace"
)

func main() {
	app := core.NewApplication("detect-then-classify")
	session := core.NewSession(tensorflow.New(), gpu.TeslaV100)

	detector, _ := modelzoo.ByName("MLPerf_SSD_MobileNet_v1_300x300")
	classifier, _ := modelzoo.ByName("MLPerf_ResNet50_v1.5")

	dg, err := detector.Graph(1)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := app.Profile(session, dg, core.Options{Levels: core.ML}); err != nil {
		log.Fatal(err)
	}

	// Host-side crop/resize of the detected regions.
	app.Idle(3 * time.Millisecond)

	// Classify the 8 detected crops as one batch.
	cg, err := classifier.Graph(8)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := app.Profile(session, cg, core.Options{Levels: core.ML}); err != nil {
		log.Fatal(err)
	}

	tr := app.Finish()
	root := tr.Find("detect-then-classify")
	fmt.Printf("application span: %v total\n\n", root.Duration())

	var predictions []*trace.Span
	for _, sp := range tr.Spans {
		if sp.Name == "model_prediction" {
			predictions = append(predictions, sp)
		}
	}
	fmt.Printf("stage 1 (detector):   %8v\n", predictions[0].Duration())
	fmt.Printf("host crop/resize gap: %8v\n", predictions[1].Begin.Sub(predictions[0].End))
	fmt.Printf("stage 2 (classifier): %8v\n", predictions[1].Duration())

	fmt.Println("\napplication timeline (top two levels):")
	slim := &trace.Trace{}
	for _, sp := range tr.Spans {
		if sp.Level <= trace.LevelModel {
			slim.Spans = append(slim.Spans, sp)
		}
	}
	slim.FormatTree(os.Stdout, 0)
}
