// leveled_overhead reproduces the paper's Fig 2: the same model profiled
// at M, M/L, and M/L/G levels. Each additional level adds measurable
// overhead to the model-prediction latency, but leveled experimentation
// reads each level's latencies from the run where they are accurate.
//
// Run with: go run ./examples/leveled_overhead
package main

import (
	"fmt"
	"log"

	"xsp/internal/core"
	"xsp/internal/cupti"
	"xsp/internal/gpu"
	"xsp/internal/modelzoo"
	"xsp/internal/tensorflow"
)

func main() {
	model, _ := modelzoo.ByName("MLPerf_ResNet50_v1.5")
	session := core.NewSession(tensorflow.New(), gpu.TeslaV100)

	g, err := model.Graph(256)
	if err != nil {
		log.Fatal(err)
	}
	lv, err := session.LeveledProfile(g, nil)
	if err != nil {
		log.Fatal(err)
	}

	mLat := lv.ModelLatency.Seconds() * 1e3
	fmt.Printf("M      prediction %8.2f ms   (accurate model latency)\n", mLat)
	fmt.Printf("M/L    prediction %8.2f ms   layer profiling overhead +%.1f ms (paper: +157 ms)\n",
		mLat+lv.LayerOverhead.Seconds()*1e3, lv.LayerOverhead.Seconds()*1e3)
	fmt.Printf("M/L/G  prediction %8.2f ms   GPU profiling overhead   +%.1f ms\n",
		mLat+(lv.LayerOverhead+lv.GPUOverhead).Seconds()*1e3, lv.GPUOverhead.Seconds()*1e3)

	// Adding hardware metric collection replays kernels: the paper notes
	// memory metrics can slow execution by over 100x.
	g2, _ := model.Graph(256)
	withMetrics, err := session.Profile(g2, core.Options{Levels: core.MLG, GPUMetrics: cupti.StandardMetrics})
	if err != nil {
		log.Fatal(err)
	}
	metricLat := withMetrics.ModelSpan.Duration().Seconds() * 1e3
	fmt.Printf("M/L/G+metrics     %8.2f ms   kernel replay for %d counter passes (%.0fx the M run)\n",
		metricLat, 103, metricLat/mLat)
}
