// framework_compare reproduces the paper's Section IV-B: the same models
// run under the TensorFlow and MXNet personalities, showing MXNet's higher
// online latency on compute-bound ResNets (fixed per-layer host overhead)
// and its higher throughput on memory-bound MobileNets (fused BatchNorm +
// leaner element-wise kernels than TF's Eigen).
//
// Run with: go run ./examples/framework_compare
package main

import (
	"fmt"
	"log"

	"xsp/internal/core"
	"xsp/internal/gpu"
	"xsp/internal/modelzoo"
	"xsp/internal/mxnet"
	"xsp/internal/tensorflow"
	"xsp/internal/workload"
)

func main() {
	pairs := []struct{ tf, mx string }{
		{"ResNet_v1_50", "MXNet_ResNet_v1_50"},
		{"ResNet_v2_50", "MXNet_ResNet_v2_50"},
		{"MobileNet_v1_1.0_224", "MXNet_MobileNet_v1_1.0_224"},
		{"MobileNet_v1_0.5_224", "MXNet_MobileNet_v1_0.5_224"},
	}
	fmt.Printf("%-28s %14s %14s %12s\n", "model", "online (TF)", "online (MXNet)", "tput ratio")
	for _, pair := range pairs {
		tfModel, _ := modelzoo.ByName(pair.tf)
		mxModel, _ := modelzoo.ByName(pair.mx)

		tfPts, err := workload.Sweep(core.NewSession(tensorflow.New(), gpu.TeslaV100), tfModel.Graph, nil)
		if err != nil {
			log.Fatal(err)
		}
		mxPts, err := workload.Sweep(core.NewSession(mxnet.New(), gpu.TeslaV100), mxModel.Graph, nil)
		if err != nil {
			log.Fatal(err)
		}

		tfOnline := workload.OnlineLatency(tfPts).Seconds() * 1e3
		mxOnline := workload.OnlineLatency(mxPts).Seconds() * 1e3
		ratio := workload.MaxThroughput(mxPts).Throughput / workload.MaxThroughput(tfPts).Throughput
		fmt.Printf("%-28s %11.2f ms %11.2f ms %11.2fx\n", pair.tf, tfOnline, mxOnline, ratio)
	}
	fmt.Println("\npaper: MXNet ResNets 1.3-1.8x slower online, ~equal peak throughput;")
	fmt.Println("       MXNet MobileNets 1.35-1.76x higher peak throughput")
}
