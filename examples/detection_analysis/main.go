// detection_analysis reproduces the paper's object-detection insight
// (Section IV-A, finding 2): unlike image classification, the
// detection models attribute almost none of their latency to convolution
// layers — the dominating layer type is Where, whose dynamic-shape host
// work also caps the useful batch size.
//
// Run with: go run ./examples/detection_analysis
package main

import (
	"fmt"
	"log"

	"xsp/internal/analysis"
	"xsp/internal/core"
	"xsp/internal/gpu"
	"xsp/internal/modelzoo"
	"xsp/internal/tensorflow"
	"xsp/internal/workload"
)

func main() {
	names := []string{
		"MLPerf_ResNet50_v1.5",            // IC baseline: conv-dominated
		"MLPerf_SSD_MobileNet_v1_300x300", // OD: Where-dominated
		"Faster_RCNN_ResNet50",
	}
	fmt.Printf("%-34s %10s %10s %14s %16s\n", "model", "conv %", "Where %", "optimal batch", "online latency")
	for _, name := range names {
		m, ok := modelzoo.ByName(name)
		if !ok {
			log.Fatalf("zoo missing %s", name)
		}
		session := core.NewSession(tensorflow.New(), gpu.TeslaV100)

		points, err := workload.Sweep(session, m.Graph, nil)
		if err != nil {
			log.Fatal(err)
		}
		opt := workload.OptimalBatch(points)

		g, err := m.Graph(opt.Batch)
		if err != nil {
			log.Fatal(err)
		}
		res, err := session.Profile(g, core.Options{Levels: core.ML})
		if err != nil {
			log.Fatal(err)
		}
		rs, err := analysis.NewRunSet(gpu.TeslaV100, res.Trace)
		if err != nil {
			log.Fatal(err)
		}

		var wherePct float64
		for _, s := range rs.A6LatencyByType() {
			if s.Type == "Where" {
				wherePct = s.Percent
			}
		}
		fmt.Printf("%-34s %9.1f%% %9.1f%% %14d %13.2f ms\n",
			name, rs.ConvLatencyPercent(), wherePct, opt.Batch,
			workload.OnlineLatency(points).Seconds()*1e3)
	}
	fmt.Println("\npaper: OD models (except Faster_RCNN_NAS) spend only 0.6-14.9% in convolution;")
	fmt.Println("       the Where reshape/NMS plumbing dominates and limits optimal batch to 8-16")
}
