// Package xsp_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (see DESIGN.md's
// per-experiment index). Each benchmark drives the corresponding
// experiment generator end to end — profiling runs, analysis pipeline, and
// table rendering — so `go test -bench=.` both regenerates the results and
// measures the harness cost. Run `go run ./cmd/xsp-bench <id>` to see an
// experiment's output.
package xsp_test

import (
	"io"
	"testing"

	"xsp/internal/experiments"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig 1: the hierarchical model/layer/GPU-kernel profile.
func BenchmarkFig01_Hierarchy(b *testing.B) { runExperiment(b, "fig01") }

// Fig 2: leveled experimentation overhead (M, M/L, M/L/G).
func BenchmarkFig02_LeveledOverhead(b *testing.B) { runExperiment(b, "fig02") }

// Fig 3: ResNet50 throughput across batch sizes.
func BenchmarkFig03_ThroughputVsBatch(b *testing.B) { runExperiment(b, "fig03") }

// Table I: the 15-analysis catalogue.
func BenchmarkTab01_AnalysisCatalogue(b *testing.B) { runExperiment(b, "tab01") }

// Table II: top-5 most time-consuming layers.
func BenchmarkTab02_TopLayers(b *testing.B) { runExperiment(b, "tab02") }

// Fig 4: layer statistics by type (A5-A7).
func BenchmarkFig04_LayerStats(b *testing.B) { runExperiment(b, "fig04") }

// Fig 5: per-layer latency and allocation (A3-A4).
func BenchmarkFig05_PerLayer(b *testing.B) { runExperiment(b, "fig05") }

// Table III: top-5 most time-consuming GPU kernels (A8).
func BenchmarkTab03_TopKernels(b *testing.B) { runExperiment(b, "tab03") }

// Fig 6: GPU kernel roofline (A9).
func BenchmarkFig06_KernelRoofline(b *testing.B) { runExperiment(b, "fig06") }

// Table IV: kernels aggregated by name (A10).
func BenchmarkTab04_KernelsByName(b *testing.B) { runExperiment(b, "tab04") }

// Table V: kernels aggregated by layer (A11).
func BenchmarkTab05_KernelsByLayer(b *testing.B) { runExperiment(b, "tab05") }

// Fig 7: per-layer GPU metrics (A12).
func BenchmarkFig07_LayerMetrics(b *testing.B) { runExperiment(b, "fig07") }

// Fig 8: GPU vs non-GPU latency per layer (A13).
func BenchmarkFig08_GPUvsNonGPU(b *testing.B) { runExperiment(b, "fig08") }

// Fig 9: layer roofline (A14).
func BenchmarkFig09_LayerRoofline(b *testing.B) { runExperiment(b, "fig09") }

// Table VI: model aggregate across batch sizes (A15).
func BenchmarkTab06_ModelAggregate(b *testing.B) { runExperiment(b, "tab06") }

// Fig 10: model roofline across batch sizes.
func BenchmarkFig10_ModelRoofline(b *testing.B) { runExperiment(b, "fig10") }

// Table VII: the five evaluation systems.
func BenchmarkTab07_Systems(b *testing.B) { runExperiment(b, "tab07") }

// Table VIII: all 55 TensorFlow models.
func BenchmarkTab08_TFModels(b *testing.B) { runExperiment(b, "tab08") }

// Table IX: in-depth characterization of the 37 IC models.
func BenchmarkTab09_ICModels(b *testing.B) { runExperiment(b, "tab09") }

// Table X: the 10 MXNet models vs TensorFlow.
func BenchmarkTab10_MXNetModels(b *testing.B) { runExperiment(b, "tab10") }

// Fig 11: ResNet50 across the five systems.
func BenchmarkFig11_Systems(b *testing.B) { runExperiment(b, "fig11") }

// Fig 12: roofline of the 37 IC models.
func BenchmarkFig12_ICRoofline(b *testing.B) { runExperiment(b, "fig12") }

// Ablations of the design choices DESIGN.md calls out.

// cuDNN algorithm heuristics vs forced algorithms.
func BenchmarkAbl01_ConvAlgorithms(b *testing.B) { runExperiment(b, "abl01") }

// Profiling overhead by level set.
func BenchmarkAbl02_ProfilingOverhead(b *testing.B) { runExperiment(b, "abl02") }

// Serialized vs pipelined layer profiling.
func BenchmarkAbl03_SerializedVsPipelined(b *testing.B) { runExperiment(b, "abl03") }

// Element-wise library swap under one framework.
func BenchmarkAbl04_ElementwiseLibrary(b *testing.B) { runExperiment(b, "abl04") }

// Interleaving two model instances on separate streams.
func BenchmarkAbl05_StreamInterleaving(b *testing.B) { runExperiment(b, "abl05") }
