module xsp

go 1.22
